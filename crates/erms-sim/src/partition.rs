//! Deterministic, seed-free topology-aware shard partitioning.
//!
//! [`Partition`] is the lookup table the sharded engine
//! ([`crate::shard`]) consults for microservice ownership: a dense
//! `Vec<u32>` of microservice → shard. Two constructors matter:
//!
//! * [`Partition::modulo`] — the PR-7 default, `ms.index() % K`. It
//!   ignores the call graph, so on topologies with per-service private
//!   microservice slices (the Taobao-scale synthetic preset, real
//!   Alibaba-style pools) most parent→child edges cross shards and every
//!   call pays a mailbox hop.
//! * [`Partition::topology_aware`] — a greedy multilevel partitioner over
//!   the merged dependency graphs of all services. Edge weights are the
//!   expected calls/ms over each parent→child microservice pair and node
//!   weights the expected call arrivals per microservice (a proxy for
//!   event load), both from [`erms_trace::synth::rate_hints`]. The
//!   pipeline is the classic multilevel shape: **coarsen** by
//!   heavy-edge matching (never growing a coarse vertex past the
//!   per-shard average), **greedy balanced initial assignment** of
//!   coarse vertices in descending weight order, **projection** to the
//!   full graph, a bounded **rebalance** pass restoring the balance
//!   envelope, and KL/FM-style **boundary refinement** that moves a
//!   microservice to the neighboring shard with the highest adjacency
//!   gain while staying inside the envelope.
//!
//! # Determinism
//!
//! The partitioner is a *pure function of `(topology, workloads, K)`*:
//! no RNG, no `HashMap` iteration, every `f64` comparison via
//! [`f64::total_cmp`], and every tie broken by `MicroserviceId` (or the
//! smallest member id of a coarse vertex). Repeated calls return equal
//! tables, which is what lets benchmarks and tests pin results produced
//! under a topology-aware partition just as hard as the modulo goldens.
//!
//! # Balance envelope
//!
//! Let `total` be the summed node weight, `avg = total / K` and `w_max`
//! the heaviest single microservice. Every phase respects the envelope
//! `limit = max(avg × (1 + BALANCE_TOLERANCE), avg + w_max)` and the
//! rebalance pass enforces it, so the final partition always satisfies
//! `max shard weight ≤ limit` — the classic greedy bound, pinned by the
//! `partition_props` suite. When all workload rates are zero the node
//! weights degenerate; [`Partition::topology_aware`] then falls back to
//! uniform per-service rates so the structure still drives the cut.

use std::collections::BTreeMap;

use erms_core::app::{App, RequestRate, WorkloadVector};
use erms_core::error::{Error, Result};
use erms_core::ids::MicroserviceId;
use erms_trace::synth::{rate_hints, RateHints};

/// A microservice → shard lookup table for the sharded DES engine.
///
/// Construct via [`Partition::modulo`], [`Partition::topology_aware`] or
/// [`Partition::from_assignment`]; consume via
/// [`Simulation::run_sharded_with_partition`](crate::runtime::Simulation::run_sharded_with_partition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assign: Vec<u32>,
    shards: usize,
}

/// Rate hints with the zero-workload fallback applied: when every
/// service rate is zero the weights carry no signal, so a uniform
/// 1-request-per-second rate per service stands in — keeping the
/// partitioner (and the balance property tests, which must see the same
/// weights) structure-driven instead of degenerate.
#[must_use]
pub fn partition_rate_hints(app: &App, workloads: &WorkloadVector) -> RateHints {
    let total: f64 = app
        .services()
        .map(|(sid, _)| workloads.rate(sid).as_per_ms())
        .sum();
    if total > 0.0 {
        rate_hints(app, workloads)
    } else {
        let mut uniform = WorkloadVector::new();
        for (sid, _) in app.services() {
            uniform.set(sid, RequestRate::per_second(1.0));
        }
        rate_hints(app, &uniform)
    }
}

impl Partition {
    /// Relative slack over the perfectly balanced per-shard node weight
    /// that every partitioning phase is allowed to use.
    pub const BALANCE_TOLERANCE: f64 = 0.10;

    /// The PR-7 default partition: `ms.index() % shards`.
    #[must_use]
    pub fn modulo(ms_count: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            assign: (0..ms_count).map(|i| (i % shards) as u32).collect(),
            shards,
        }
    }

    /// Wraps an arbitrary assignment table (property tests, external
    /// partitioners).
    ///
    /// # Errors
    ///
    /// Rejects `shards == 0` and any entry `>= shards`.
    pub fn from_assignment(assign: Vec<u32>, shards: usize) -> Result<Self> {
        if shards == 0 {
            return Err(Error::InvalidParameter(
                "partition shard count must be at least 1".into(),
            ));
        }
        if let Some(bad) = assign.iter().find(|&&s| s as usize >= shards) {
            return Err(Error::InvalidParameter(format!(
                "partition assigns shard {bad} but only {shards} shard(s) exist"
            )));
        }
        Ok(Self { assign, shards })
    }

    /// Builds a topology-aware partition of `app`'s microservices into
    /// `shards` shards (see the module docs for the algorithm). Output
    /// is a pure function of `(app, workloads, shards)`.
    #[must_use]
    pub fn topology_aware(app: &App, workloads: &WorkloadVector, shards: usize) -> Self {
        let n = app.microservice_count();
        let k = shards.max(1);
        if k == 1 || n == 0 {
            return Self {
                assign: vec![0; n],
                shards: k,
            };
        }
        let hints = partition_rate_hints(app, workloads);
        let node_w = hints.node_calls_per_ms;
        // Undirected merged edge weights, excluding self-edges (uncuttable).
        let mut edge_w: BTreeMap<(u32, u32), f64> = BTreeMap::new();
        for e in &hints.edges {
            let (a, b) = (e.parent.index() as u32, e.child.index() as u32);
            if a == b {
                continue;
            }
            *edge_w.entry((a.min(b), a.max(b))).or_insert(0.0) += e.calls_per_ms;
        }
        let total_w: f64 = node_w.iter().sum();
        let avg = total_w / k as f64;
        let w_max = node_w.iter().copied().fold(0.0f64, f64::max);
        let limit = (avg * (1.0 + Self::BALANCE_TOLERANCE)).max(avg + w_max);

        // --- Phase 1: coarsen by heavy-edge matching. -------------------
        let mut members: Vec<Vec<u32>> = (0..n as u32).map(|i| vec![i]).collect();
        let mut vert_w = node_w.clone();
        let mut edges = edge_w.clone();
        let target = (k * 8).max(32);
        while members.len() > target {
            let nv = members.len();
            let mut by_weight: Vec<((u32, u32), f64)> =
                edges.iter().map(|(&key, &w)| (key, w)).collect();
            by_weight.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
            let mut matched = vec![false; nv];
            // Partner of the lower endpoint of each contracted pair.
            let mut partner: Vec<Option<u32>> = vec![None; nv];
            let mut pairs = 0usize;
            for ((a, b), _) in by_weight {
                let (a, b) = (a as usize, b as usize);
                if matched[a] || matched[b] || vert_w[a] + vert_w[b] > avg {
                    continue;
                }
                matched[a] = true;
                matched[b] = true;
                partner[a] = Some(b as u32);
                pairs += 1;
            }
            if pairs == 0 {
                break;
            }
            // Contract: old vertex v maps to the new id of itself or of
            // its lower-id partner; new ids are dense in old-id order.
            let mut map = vec![u32::MAX; nv];
            let mut absorbed = vec![false; nv];
            for (a, p) in partner.iter().enumerate() {
                if let Some(b) = p {
                    absorbed[*b as usize] = true;
                    debug_assert!(a < *b as usize, "edge keys are (min, max)");
                }
            }
            let mut new_members: Vec<Vec<u32>> = Vec::with_capacity(nv - pairs);
            let mut new_w: Vec<f64> = Vec::with_capacity(nv - pairs);
            for v in 0..nv {
                if absorbed[v] {
                    continue;
                }
                let id = new_members.len() as u32;
                map[v] = id;
                let mut group = std::mem::take(&mut members[v]);
                let mut w = vert_w[v];
                if let Some(b) = partner[v] {
                    group.extend(std::mem::take(&mut members[b as usize]));
                    group.sort_unstable();
                    w += vert_w[b as usize];
                }
                new_members.push(group);
                new_w.push(w);
            }
            for v in 0..nv {
                if absorbed[v] {
                    // An absorbed vertex shares its absorber's new id.
                    let a = partner
                        .iter()
                        .position(|p| *p == Some(v as u32))
                        .expect("absorbed vertex has an absorber");
                    map[v] = map[a];
                }
            }
            let mut new_edges: BTreeMap<(u32, u32), f64> = BTreeMap::new();
            for ((a, b), w) in edges {
                let (na, nb) = (map[a as usize], map[b as usize]);
                if na == nb {
                    continue;
                }
                *new_edges.entry((na.min(nb), na.max(nb))).or_insert(0.0) += w;
            }
            members = new_members;
            vert_w = new_w;
            edges = new_edges;
        }

        // --- Phase 2: greedy balanced initial assignment. ---------------
        let nv = members.len();
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); nv];
        for (&(a, b), &w) in &edges {
            adj[a as usize].push((b, w));
            adj[b as usize].push((a, w));
        }
        let min_member: Vec<u32> = members.iter().map(|g| g[0]).collect();
        let mut order: Vec<u32> = (0..nv as u32).collect();
        order.sort_by(|&x, &y| {
            vert_w[y as usize]
                .total_cmp(&vert_w[x as usize])
                .then(min_member[x as usize].cmp(&min_member[y as usize]))
        });
        let mut vassign = vec![u32::MAX; nv];
        let mut load = vec![0.0f64; k];
        let mut aff = vec![0.0f64; k];
        for &v in &order {
            let v = v as usize;
            aff.iter_mut().for_each(|a| *a = 0.0);
            for &(u, w) in &adj[v] {
                let s = vassign[u as usize];
                if s != u32::MAX {
                    aff[s as usize] += w;
                }
            }
            // Highest affinity among shards with room; ties prefer the
            // lighter shard, then the lower index. Fallback: lightest.
            let mut best: Option<usize> = None;
            for s in 0..k {
                if load[s] + vert_w[v] > limit {
                    continue;
                }
                best = Some(match best {
                    None => s,
                    Some(b) => {
                        if aff[s]
                            .total_cmp(&aff[b])
                            .then(load[b].total_cmp(&load[s]))
                            .is_gt()
                        {
                            s
                        } else {
                            b
                        }
                    }
                });
            }
            let s = best.unwrap_or_else(|| lightest(&load));
            vassign[v] = s as u32;
            load[s] += vert_w[v];
        }

        // --- Phase 3: project, rebalance, refine on the full graph. -----
        let mut assign = vec![0u32; n];
        for (v, group) in members.iter().enumerate() {
            for &m in group {
                assign[m as usize] = vassign[v];
            }
        }
        let mut load = vec![0.0f64; k];
        for (m, &s) in assign.iter().enumerate() {
            load[s as usize] += node_w[m];
        }
        // Rebalance: while a shard exceeds the envelope, move its
        // lightest positive-weight member to the lightest shard. Moves
        // never create a new violator (`min load + w ≤ avg + w_max ≤
        // limit`), so at most one pass over the members is needed; the
        // iteration cap is a pure backstop.
        for _ in 0..4 * n.max(1) {
            let h = heaviest(&load);
            if load[h] <= limit {
                break;
            }
            let l = lightest(&load);
            let m = (0..n)
                .filter(|&m| assign[m] as usize == h && node_w[m] > 0.0)
                .min_by(|&x, &y| node_w[x].total_cmp(&node_w[y]).then(x.cmp(&y)));
            let Some(m) = m else { break };
            assign[m] = l as u32;
            load[h] -= node_w[m];
            load[l] += node_w[m];
        }
        // FM-style boundary refinement: move a microservice to the
        // neighboring shard with the strictly highest adjacency gain,
        // inside the envelope. Each move strictly reduces the weighted
        // cut, so the loop terminates; passes are capped regardless.
        let mut full_adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (&(a, b), &w) in &edge_w {
            full_adj[a as usize].push((b, w));
            full_adj[b as usize].push((a, w));
        }
        let mut gain = vec![0.0f64; k];
        for _pass in 0..8 {
            let mut moved = false;
            for m in 0..n {
                if full_adj[m].is_empty() {
                    continue;
                }
                let cur = assign[m] as usize;
                gain.iter_mut().for_each(|g| *g = 0.0);
                for &(u, w) in &full_adj[m] {
                    gain[assign[u as usize] as usize] += w;
                }
                let mut best = cur;
                for s in 0..k {
                    if s == cur || load[s] + node_w[m] > limit {
                        continue;
                    }
                    if gain[s].total_cmp(&gain[best]).is_gt() {
                        best = s;
                    }
                }
                if best != cur {
                    assign[m] = best as u32;
                    load[cur] -= node_w[m];
                    load[best] += node_w[m];
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        Self { assign, shards: k }
    }

    /// The shard owning microservice `ms`.
    #[inline]
    #[must_use]
    pub fn shard_of(&self, ms: MicroserviceId) -> usize {
        self.assign[ms.index()] as usize
    }

    /// Number of shards the table partitions into.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of microservices covered by the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// Whether the table covers no microservice.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// The raw assignment table, indexed by `MicroserviceId`.
    #[must_use]
    pub fn assignment(&self) -> &[u32] {
        &self.assign
    }

    /// Counts `(cut, total)` dependency-graph edges under this table,
    /// where an edge is cut when parent and child microservices live on
    /// different shards — the same per-edge counting as
    /// [`crate::shard::cross_shard_edge_fraction`].
    #[must_use]
    pub fn cut_edges(&self, app: &App) -> (u64, u64) {
        let mut cut = 0u64;
        let mut total = 0u64;
        for (_, svc) in app.services() {
            for (_, node) in svc.graph.iter() {
                for stage in &node.stages {
                    for &child in stage {
                        total += 1;
                        let child_ms = svc.graph.node(child).microservice;
                        if self.shard_of(node.microservice) != self.shard_of(child_ms) {
                            cut += 1;
                        }
                    }
                }
            }
        }
        (cut, total)
    }

    /// Fraction of dependency-graph edges cut by this table (0 when the
    /// app has no edges).
    #[must_use]
    pub fn cut_edge_fraction(&self, app: &App) -> f64 {
        let (cut, total) = self.cut_edges(app);
        if total == 0 {
            0.0
        } else {
            cut as f64 / total as f64
        }
    }

    /// Per-shard node weight under this table, plus the balance envelope
    /// `limit` that [`Partition::topology_aware`] guarantees — exposed so
    /// property tests assert against exactly the weights the partitioner
    /// used.
    #[must_use]
    pub fn balance_report(&self, app: &App, workloads: &WorkloadVector) -> (Vec<f64>, f64) {
        let node_w = partition_rate_hints(app, workloads).node_calls_per_ms;
        let mut load = vec![0.0f64; self.shards];
        for (m, &w) in node_w.iter().enumerate() {
            load[self.assign[m] as usize] += w;
        }
        let total: f64 = node_w.iter().sum();
        let avg = total / self.shards as f64;
        let w_max = node_w.iter().copied().fold(0.0f64, f64::max);
        let limit = (avg * (1.0 + Self::BALANCE_TOLERANCE)).max(avg + w_max);
        (load, limit)
    }
}

/// Index of the lightest shard, ties to the lowest index.
fn lightest(load: &[f64]) -> usize {
    let mut best = 0usize;
    for (s, w) in load.iter().enumerate().skip(1) {
        if w.total_cmp(&load[best]).is_lt() {
            best = s;
        }
    }
    best
}

/// Index of the heaviest shard, ties to the lowest index.
fn heaviest(load: &[f64]) -> usize {
    let mut best = 0usize;
    for (s, w) in load.iter().enumerate().skip(1) {
        if w.total_cmp(&load[best]).is_gt() {
            best = s;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use erms_core::app::{AppBuilder, Sla};
    use erms_core::latency::LatencyProfile;
    use erms_core::resources::Resources;
    use erms_trace::synth::{generate, SynthConfig};

    fn uniform(app: &App, per_min: f64) -> WorkloadVector {
        let mut w = WorkloadVector::new();
        for (sid, _) in app.services() {
            w.set(sid, RequestRate::per_minute(per_min));
        }
        w
    }

    #[test]
    fn modulo_matches_the_engine_default() {
        let p = Partition::modulo(10, 4);
        for i in 0..10u32 {
            assert_eq!(p.shard_of(MicroserviceId::new(i)), i as usize % 4);
        }
        assert_eq!(p.shards(), 4);
        assert_eq!(Partition::modulo(3, 0).shards(), 1, "K=0 clamps to 1");
    }

    #[test]
    fn from_assignment_validates() {
        assert!(Partition::from_assignment(vec![0, 1, 2], 3).is_ok());
        assert!(Partition::from_assignment(vec![0, 3], 3).is_err());
        assert!(Partition::from_assignment(vec![], 0).is_err());
    }

    #[test]
    fn topology_aware_is_total_deterministic_and_single_shard_trivial() {
        let g = generate(&SynthConfig::scaled(300, 11));
        let w = uniform(&g.app, 600.0);
        for k in [1usize, 2, 3, 4, 8] {
            let p = Partition::topology_aware(&g.app, &w, k);
            assert_eq!(p.len(), 300);
            assert_eq!(p.shards(), k);
            assert!(p.assignment().iter().all(|&s| (s as usize) < k));
            assert_eq!(p, Partition::topology_aware(&g.app, &w, k));
        }
        let one = Partition::topology_aware(&g.app, &w, 1);
        assert!(one.assignment().iter().all(|&s| s == 0));
        assert_eq!(one.cut_edges(&g.app).0, 0);
    }

    #[test]
    fn topology_aware_respects_the_balance_envelope() {
        let g = generate(&SynthConfig::scaled(500, 3));
        let w = uniform(&g.app, 1_200.0);
        for k in [2usize, 4, 8] {
            let p = Partition::topology_aware(&g.app, &w, k);
            let (load, limit) = p.balance_report(&g.app, &w);
            let max = load.iter().copied().fold(0.0f64, f64::max);
            assert!(
                max <= limit * (1.0 + 1e-9),
                "K={k}: max shard load {max} exceeds envelope {limit} ({load:?})"
            );
        }
    }

    #[test]
    fn topology_aware_cuts_fewer_edges_than_modulo_on_sliced_pools() {
        // The synthetic preset gives every service a private contiguous
        // slice of the pool: a topology-aware partition keeps slices
        // together, the modulo partition shreds them.
        let g = generate(&SynthConfig::scaled(800, 17));
        let w = uniform(&g.app, 600.0);
        for k in [2usize, 4] {
            let topo = Partition::topology_aware(&g.app, &w, k);
            let modulo = Partition::modulo(g.app.microservice_count(), k);
            let (tc, tt) = topo.cut_edges(&g.app);
            let (mc, mt) = modulo.cut_edges(&g.app);
            assert_eq!(tt, mt, "edge totals must agree");
            assert!(
                (tc as f64) < 0.8 * mc as f64,
                "K={k}: topology-aware cut {tc}/{tt} not clearly below modulo {mc}/{mt}"
            );
        }
    }

    #[test]
    fn zero_workloads_fall_back_to_structure() {
        let g = generate(&SynthConfig::scaled(120, 5));
        let p = Partition::topology_aware(&g.app, &WorkloadVector::new(), 4);
        let (load, limit) = p.balance_report(&g.app, &WorkloadVector::new());
        assert!(load.iter().sum::<f64>() > 0.0, "fallback weights are live");
        let max = load.iter().copied().fold(0.0f64, f64::max);
        assert!(max <= limit * (1.0 + 1e-9));
    }

    #[test]
    fn handles_degenerate_shapes() {
        // More shards than microservices, and a single-ms app.
        let mut b = AppBuilder::new("tiny");
        let m = b.microservice("m", LatencyProfile::linear(0.01, 1.0), Resources::default());
        b.service("s", Sla::p95_ms(50.0), |g| {
            g.entry(m);
        });
        let app = b.build().unwrap();
        let w = uniform(&app, 60.0);
        let p = Partition::topology_aware(&app, &w, 8);
        assert_eq!(p.len(), 1);
        assert_eq!(p.shards(), 8);
        assert_eq!(p.cut_edges(&app), (0, 0));
        assert_eq!(p.cut_edge_fraction(&app), 0.0);
    }
}
