//! # erms-control — the multi-tenant control-plane daemon
//!
//! A long-running HTTP/JSON service that wraps the Erms planner core
//! (profiling → latency targets → scaling → priority scheduling, with the
//! resilience ladder of `erms-core::resilience`) behind a REST API, so
//! many *tenants* — independent applications sharing one microservice
//! pool — can stream telemetry in and pull scaling plans out.
//!
//! The crate is **dependency-free** by construction: the build
//! environment is fully offline, so the HTTP server
//! ([`http::Server`]) is hand-rolled over `std::net::TcpListener` with a
//! bounded worker-thread pool, and the JSON codec ([`json::Json`]) is a
//! strict RFC 8259 implementation whose number serializer round-trips
//! every finite `f64` bit-exactly — the property the snapshot/restore
//! equivalence guarantee is built on.
//!
//! ## Layering
//!
//! ```text
//! json      strings ↔ Json values            (no domain knowledge)
//! http      TCP ↔ Request/Response           (no JSON knowledge)
//! codec     Json ↔ App/Plan/Cluster/...      (no HTTP knowledge)
//! tenant    Registry of per-tenant loops     (no wire knowledge)
//! snapshot  Registry ↔ versioned disk format
//! server    routes + drain/reload + metrics  (ties it together)
//! ```
//!
//! ## Endpoints
//!
//! | Method & path                         | Purpose |
//! |---------------------------------------|---------|
//! | `GET /healthz`                        | liveness + tenant count |
//! | `GET /metrics`                        | Prometheus text exposition |
//! | `GET/POST /v1/tenants`                | list / register tenants |
//! | `GET/DELETE /v1/tenants/{id}`         | inspect / remove one tenant |
//! | `POST /v1/tenants/{id}/spans`         | ingest telemetry spans |
//! | `POST /v1/tenants/{id}/workloads`     | update request rates |
//! | `GET /v1/tenants/{id}/plan`           | current scaling plan |
//! | `POST /v1/tenants/{id}/replan`        | refit + run one control round |
//! | `GET /v1/tenants/{id}/history`        | scaling-decision audit trail |
//! | `POST /v1/snapshot`                   | write the versioned snapshot |
//! | `POST /v1/reload`                     | drain, restore from snapshot |
//! | `POST /v1/shutdown`                   | graceful stop |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod http;
pub mod json;
pub mod server;
pub mod snapshot;
pub mod tenant;

pub use http::Client;
pub use json::Json;
pub use server::{ControlPlane, ControlPlaneConfig};
pub use tenant::{Registry, Tenant};
