//! A spec-correct JSON value, parser and serializer, hand-rolled in the
//! tradition of the workspace's `erms_bench::env_json()` — the build is
//! fully offline, so serde_json is not available and the serde stub does
//! not serialize anything.
//!
//! Two properties matter more than speed here:
//!
//! * **Exact f64 round-trips.** Planner state is full of f64s whose *bit
//!   patterns* are contractual (warm re-plans must be bit-identical to
//!   cold ones). Serialization uses Rust's shortest-round-trip `Display`
//!   for `f64`, and parsing uses `f64::from_str`, which together restore
//!   the exact bits of every finite double — including `-0.0` (printed
//!   as `-0`) and subnormals. Non-finite values have no JSON
//!   representation and are rejected with a typed error at
//!   serialization time; codecs that need ∞ (e.g. a constant cut-off)
//!   must encode it structurally (this crate uses `null`).
//! * **Strict grammar.** The parser accepts exactly RFC 8259: no
//!   trailing commas, no comments, no leading zeros, no bare NaN/inf
//!   tokens, full `\uXXXX` escapes with surrogate-pair handling, and a
//!   depth limit so adversarial nesting cannot overflow the stack.
//!
//! Object members preserve insertion order (a `Vec` of pairs, not a
//! map): snapshot files diff cleanly and serialization is deterministic.

use std::fmt;

/// Maximum nesting depth the parser accepts. Snapshot documents nest a
/// dozen levels; 128 leaves headroom while keeping recursion bounded.
const MAX_DEPTH: usize = 128;

/// A JSON document value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Constructing a non-finite `Num` is not itself an
    /// error, but serializing one is ([`JsonError::NonFinite`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved and duplicate keys are
    /// rejected by the parser.
    Obj(Vec<(String, Json)>),
}

/// Typed error for parsing or serialization failures.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// The input text violated the JSON grammar. Carries the byte offset
    /// and a description.
    Syntax {
        /// Byte offset of the offending input.
        at: usize,
        /// What went wrong.
        message: String,
    },
    /// A number to be serialized was NaN or ±∞, which JSON cannot
    /// represent.
    NonFinite,
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep,
    /// An object contained the same key twice.
    DuplicateKey(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax { at, message } => write!(f, "syntax error at byte {at}: {message}"),
            JsonError::NonFinite => write!(f, "cannot serialize a non-finite number"),
            JsonError::TooDeep => write!(f, "nesting deeper than {MAX_DEPTH}"),
            JsonError::DuplicateKey(k) => write!(f, "duplicate object key {k:?}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value. Takes `AsRef<str>` so `&String` iterators
    /// can map over it directly.
    pub fn str(s: impl AsRef<str>) -> Self {
        Json::Str(s.as_ref().to_string())
    }

    /// The value of an object member, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Element slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Member slice, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes to compact JSON text.
    ///
    /// # Errors
    ///
    /// [`JsonError::NonFinite`] if any number in the tree is NaN or ±∞.
    pub fn to_text(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write(&mut out)?;
        Ok(out)
    }

    /// Serializes to compact JSON text, panicking on non-finite numbers.
    /// The codecs encode infinity structurally (as `null`) and never build
    /// NaN values, so for values they produce this cannot fail; use
    /// [`Json::to_text`] when the tree comes from an untrusted builder.
    ///
    /// # Panics
    ///
    /// Panics if the tree contains a NaN or infinite number.
    #[must_use]
    pub fn render(&self) -> String {
        self.to_text().expect("codec-produced JSON is finite")
    }

    fn write(&self, out: &mut String) -> Result<(), JsonError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if !n.is_finite() {
                    return Err(JsonError::NonFinite);
                }
                // Rust's f64 Display prints the shortest decimal string
                // that parses back to the same bits; "-0" and subnormals
                // included. Integral values print without a fraction
                // ("3", not "3.0"), which is still valid JSON.
                out.push_str(&n.to_string());
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out)?;
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }

    /// Parses JSON text. The whole input must be one value (plus
    /// whitespace); trailing data is an error.
    ///
    /// # Errors
    ///
    /// [`JsonError::Syntax`] with a byte offset on any grammar violation,
    /// [`JsonError::TooDeep`] past the nesting bound,
    /// [`JsonError::DuplicateKey`] on repeated object keys.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after the document"));
        }
        Ok(value)
    }
}

/// Writes `s` as a JSON string literal, escaping per RFC 8259: `"` and
/// `\` always, control characters as `\n`/`\r`/`\t`/`\b`/`\f` or
/// `\u00XX`. Non-ASCII code points pass through as UTF-8.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError::Syntax {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(JsonError::DuplicateKey(key));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                0x00..=0x1f => {
                    return Err(self.err("unescaped control character in string"));
                }
                _ => {
                    // Consume one UTF-8 scalar. The input is a &str, so
                    // the bytes are valid UTF-8 by construction.
                    let start = self.pos;
                    let len = utf8_len(c);
                    self.pos += len;
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..start + len])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let Some(c) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => return self.unicode_escape(),
            _ => return Err(self.err(format!("invalid escape '\\{}'", c as char))),
        })
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&second) {
                    return Err(self.err("high surrogate not followed by a low surrogate"));
                }
                let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                return char::from_u32(combined).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..=0xDFFF).contains(&first) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match c {
                b'0'..=b'9' => u32::from(c - b'0'),
                b'a'..=b'f' => u32::from(c - b'a') + 10,
                b'A'..=b'F' => u32::from(c - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: "0" alone, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        // The grammar above admits only strings f64::from_str accepts, and
        // overflow saturates to ±∞ per IEEE — reject that explicitly so a
        // parsed document never contains a non-finite number.
        let n: f64 = text.parse().map_err(|_| self.err("unparseable number"))?;
        if !n.is_finite() {
            return Err(self.err("number overflows an f64"));
        }
        Ok(Json::Num(n))
    }
}

/// Length in bytes of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) -> Json {
        Json::parse(&v.to_text().unwrap()).unwrap()
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-0.0),
            Json::Num(1.5),
            Json::Num(1e300),
            Json::Num(5e-324),
            Json::Num(f64::MAX),
            Json::Num(f64::MIN_POSITIVE),
            Json::str("hello"),
            Json::str(""),
        ] {
            assert_eq!(round_trip(&v), v);
        }
        // -0.0 round-trips to the exact bit pattern, not just PartialEq.
        let Json::Num(n) = round_trip(&Json::Num(-0.0)) else {
            panic!()
        };
        assert_eq!(n.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn non_finite_serialization_is_a_typed_error() {
        assert_eq!(Json::Num(f64::NAN).to_text(), Err(JsonError::NonFinite));
        assert_eq!(
            Json::Num(f64::INFINITY).to_text(),
            Err(JsonError::NonFinite)
        );
        assert_eq!(
            Json::Arr(vec![Json::Num(f64::NEG_INFINITY)]).to_text(),
            Err(JsonError::NonFinite)
        );
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "quote\" backslash\\ newline\n tab\t nul\u{0} bell\u{7} é 中 🦀";
        let v = Json::str(nasty);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::str("A"));
        assert_eq!(Json::parse(r#""🦀""#).unwrap(), Json::str("🦀"));
        assert!(Json::parse(r#""\ud83e""#).is_err()); // lone high surrogate
        assert!(Json::parse(r#""\udd80""#).is_err()); // lone low surrogate
        assert!(Json::parse(r#""\ud83eA""#).is_err());
    }

    #[test]
    fn strict_grammar_rejections() {
        for text in [
            "",
            " ",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "01",
            "1.",
            ".5",
            "+1",
            "nan",
            "NaN",
            "inf",
            "Infinity",
            "1 2",
            "'a'",
            "{\"a\" 1}",
            "\"\x01\"",
            "tru",
            "[1 2]",
            "1e",
            "1e+",
            "--1",
            "\u{0031}\u{0065}\u{0039}\u{0039}\u{0039}", // 1e999 overflows
        ] {
            assert!(Json::parse(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn duplicate_keys_rejected() {
        assert_eq!(
            Json::parse(r#"{"a":1,"a":2}"#),
            Err(JsonError::DuplicateKey("a".into()))
        );
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert_eq!(Json::parse(&deep), Err(JsonError::TooDeep));
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj([("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(v.to_text().unwrap(), r#"{"z":1,"a":2}"#);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            (
                "arr",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(-2.5)]),
            ),
            ("obj", Json::obj([("k", Json::str("v"))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn whitespace_is_tolerated_between_tokens() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(
            v,
            Json::obj([
                ("a", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
                ("b", Json::Null),
            ])
        );
    }
}
