//! Versioned snapshot/restore of the whole registry.
//!
//! A snapshot carries, per tenant, exactly the state that feeds future
//! decisions: the current application model (post-refit), the profiler's
//! retained observation window, the manager's hysteresis state, the
//! tenant's cluster view, its workloads, and the audit history. Restoring
//! yields a registry whose next `replan()` is **bit-identical** to the one
//! the uninterrupted process would have run:
//!
//! * the JSON number codec round-trips every finite `f64` exactly,
//! * every `restore_*` call is a verbatim transfer (no re-normalisation),
//! * the incremental planner's internals are deliberately *not* carried —
//!   a restored manager replans cold, and the planner invariant (pinned by
//!   `tests/incremental_equivalence.rs`) makes a cold replan bit-identical
//!   to the warm one.
//!
//! Writes are atomic: the snapshot is written to `<path>.tmp` and renamed
//! over the target, so a crash mid-write never corrupts the previous
//! snapshot. The format carries an explicit version; loading rejects
//! unknown versions instead of guessing.

use std::path::Path;

use erms_core::provisioning::ClusterState;
use erms_core::resilience::{ResilienceConfig, ResilientManager};
use erms_telemetry::online::OnlineProfiler;

use crate::codec::{
    app_from_json, app_to_json, cluster_from_json, cluster_to_json, host_from_json, host_to_json,
    manager_state_from_json, manager_state_to_json, samples_from_json, samples_to_json,
    workloads_from_json, workloads_to_json,
};
use crate::json::Json;
use crate::tenant::{DecisionRecord, Registry, Tenant};

/// Current snapshot format version. Bump on any incompatible change and
/// keep a migration or an explicit rejection for older versions.
pub const SNAPSHOT_VERSION: u64 = 1;

fn record_to_json(r: &DecisionRecord) -> Json {
    Json::obj(vec![
        ("round", Json::Num(r.round as f64)),
        ("scheme", Json::str(&r.scheme)),
        ("total_containers", Json::Num(r.total_containers as f64)),
        ("refitted", Json::Num(r.refitted as f64)),
        (
            "actions",
            Json::Arr(r.actions.iter().map(Json::str).collect()),
        ),
        (
            "errors",
            Json::Arr(r.errors.iter().map(Json::str).collect()),
        ),
        ("degraded", Json::Bool(r.degraded)),
        ("skipped", Json::Bool(r.skipped)),
    ])
}

fn record_from_json(j: &Json) -> Result<DecisionRecord, String> {
    let ctx = "decision record";
    let strings = |key: &str| -> Result<Vec<String>, String> {
        j.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{ctx}: missing array `{key}`"))?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("{ctx}: `{key}` entries must be strings"))
            })
            .collect()
    };
    let uint = |key: &str| -> Result<u64, String> {
        j.get(key)
            .and_then(Json::as_f64)
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .map(|v| v as u64)
            .ok_or_else(|| format!("{ctx}: missing integer `{key}`"))
    };
    Ok(DecisionRecord {
        round: uint("round")?,
        scheme: j
            .get("scheme")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: missing string `scheme`"))?
            .to_string(),
        total_containers: uint("total_containers")?,
        refitted: uint("refitted")? as usize,
        actions: strings("actions")?,
        errors: strings("errors")?,
        degraded: j
            .get("degraded")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("{ctx}: missing bool `degraded`"))?,
        skipped: j
            .get("skipped")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("{ctx}: missing bool `skipped`"))?,
    })
}

fn tenant_to_json(t: &Tenant) -> Json {
    Json::obj(vec![
        ("id", Json::str(&t.id)),
        ("app", app_to_json(&t.app)),
        ("samples", samples_to_json(t.profiler.samples())),
        ("manager", manager_state_to_json(&t.manager.export_state())),
        ("cluster", cluster_to_json(&t.cluster)),
        ("workloads", workloads_to_json(&t.workloads)),
        (
            "history",
            Json::Arr(t.history.iter().map(record_to_json).collect()),
        ),
        ("spans_ingested", Json::Num(t.spans_ingested as f64)),
        ("samples_ingested", Json::Num(t.samples_ingested as f64)),
    ])
}

fn tenant_from_json(j: &Json) -> Result<Tenant, String> {
    let ctx = "tenant";
    let id = j
        .get("id")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: missing string `id`"))?
        .to_string();
    let app = app_from_json(
        j.get("app")
            .ok_or_else(|| format!("{ctx} `{id}`: missing `app`"))?,
    )
    .map_err(|e| format!("tenant `{id}`: {e}"))?;
    let mut profiler = OnlineProfiler::new();
    profiler.restore_samples(
        samples_from_json(
            j.get("samples")
                .ok_or_else(|| format!("{ctx} `{id}`: missing `samples`"))?,
        )
        .map_err(|e| format!("tenant `{id}`: {e}"))?,
    );
    let mut manager = ResilientManager::new(ResilienceConfig::default());
    manager.restore_state(
        manager_state_from_json(
            j.get("manager")
                .ok_or_else(|| format!("{ctx} `{id}`: missing `manager`"))?,
        )
        .map_err(|e| format!("tenant `{id}`: {e}"))?,
    );
    let cluster: ClusterState = cluster_from_json(
        j.get("cluster")
            .ok_or_else(|| format!("{ctx} `{id}`: missing `cluster`"))?,
    )
    .map_err(|e| format!("tenant `{id}`: {e}"))?;
    let workloads = workloads_from_json(
        j.get("workloads")
            .ok_or_else(|| format!("{ctx} `{id}`: missing `workloads`"))?,
    )
    .map_err(|e| format!("tenant `{id}`: {e}"))?;
    let history = j
        .get("history")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx} `{id}`: missing array `history`"))?
        .iter()
        .map(record_from_json)
        .collect::<Result<Vec<_>, String>>()
        .map_err(|e| format!("tenant `{id}`: {e}"))?;
    let uint = |key: &str| -> Result<u64, String> {
        j.get(key)
            .and_then(Json::as_f64)
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .map(|v| v as u64)
            .ok_or_else(|| format!("tenant `{id}`: missing integer `{key}`"))
    };
    Ok(Tenant {
        spans_ingested: uint("spans_ingested")?,
        samples_ingested: uint("samples_ingested")?,
        id,
        app,
        profiler,
        manager,
        cluster,
        workloads,
        history,
    })
}

/// Encodes the whole registry (tenants in id order; the control-plane
/// metrics registry is derived state and deliberately not carried).
/// Takes every tenant lock in id order for a consistent cut — no tenant
/// mutates between the first and last tenant's serialisation.
pub fn registry_to_json(registry: &Registry) -> Json {
    Json::obj(vec![
        ("version", Json::Num(SNAPSHOT_VERSION as f64)),
        (
            "pool",
            Json::Arr(registry.pool().iter().map(host_to_json).collect()),
        ),
        (
            "tenants",
            Json::Arr(
                registry
                    .lock_tenants()
                    .iter()
                    .map(|t| tenant_to_json(t))
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a registry snapshot, rejecting unknown format versions.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn registry_from_json(j: &Json) -> Result<Registry, String> {
    let version = j
        .get("version")
        .and_then(Json::as_f64)
        .ok_or_else(|| "snapshot: missing `version`".to_string())?;
    if version != SNAPSHOT_VERSION as f64 {
        return Err(format!(
            "snapshot: unsupported version {version} (this build reads {SNAPSHOT_VERSION})"
        ));
    }
    let pool = j
        .get("pool")
        .and_then(Json::as_arr)
        .ok_or_else(|| "snapshot: missing array `pool`".to_string())?
        .iter()
        .map(host_from_json)
        .collect::<Result<Vec<_>, String>>()?;
    let mut registry = Registry::new(pool);
    for tenant in j
        .get("tenants")
        .and_then(Json::as_arr)
        .ok_or_else(|| "snapshot: missing array `tenants`".to_string())?
    {
        registry.insert(tenant_from_json(tenant)?);
    }
    Ok(registry)
}

/// Serialises the registry and writes it atomically (`<path>.tmp` +
/// rename). Returns the snapshot size in bytes.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn save(registry: &Registry, path: &Path) -> std::io::Result<u64> {
    let text = registry_to_json(registry).render();
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text.as_bytes())?;
    std::fs::rename(&tmp, path)?;
    Ok(text.len() as u64)
}

/// Loads a snapshot from disk.
///
/// # Errors
///
/// Reports I/O, JSON and format errors as strings (the caller maps them
/// onto HTTP or CLI diagnostics).
pub fn load(path: &Path) -> Result<Registry, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("snapshot `{}`: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("snapshot `{}`: {e}", path.display()))?;
    registry_from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use erms_core::app::{AppBuilder, RequestRate, Sla, WorkloadVector};
    use erms_core::latency::LatencyProfile;
    use erms_core::resources::Resources;

    fn app() -> erms_core::app::App {
        let mut b = AppBuilder::new("t");
        let m = b.microservice(
            "m",
            LatencyProfile::kneed(0.002, 3.0, 0.02, 9000.0),
            Resources::new(0.1, 200.0),
        );
        b.service("s", Sla::p95_ms(100.0), |g| {
            g.entry(m);
        });
        b.build().unwrap()
    }

    #[test]
    fn snapshot_round_trips_and_preserves_next_plan_bits() {
        let mut registry = Registry::paper_pool();
        registry.create("a", app()).unwrap();
        registry
            .with_tenant("a", |t| {
                t.workloads = WorkloadVector::uniform(&t.app, RequestRate::per_minute(30_000.0));
                t.replan();
                t.workloads = WorkloadVector::uniform(&t.app, RequestRate::per_minute(60_000.0));
            })
            .unwrap();

        let dir = std::env::temp_dir().join("erms-control-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("registry.json");
        let bytes = save(&registry, &path).unwrap();
        assert!(bytes > 0);
        let restored = load(&path).unwrap();

        // Continue both worlds identically: the next round must agree bit
        // for bit.
        let a = registry.with_tenant("a", |t| t.replan().clone()).unwrap();
        let b = restored.with_tenant("a", |t| t.replan().clone()).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            registry.with_tenant("a", |t| t.plan().cloned()).unwrap(),
            restored.with_tenant("a", |t| t.plan().cloned()).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_versions_are_rejected() {
        let j = Json::parse("{\"version\":99,\"pool\":[],\"tenants\":[]}").unwrap();
        let err = registry_from_json(&j).unwrap_err();
        assert!(err.contains("unsupported version"), "{err}");
    }
}
