//! The control-plane HTTP service: routing, drain/reload, metrics
//! rendering.
//!
//! Locking is two-level (see the `tenant` module docs): a short-held
//! outer mutex guards the [`Registry`] map itself, and each tenant sits
//! behind its own `Arc<Mutex<Tenant>>`. Per-tenant endpoints (ingest,
//! replan, plan, history, …) resolve the handle under the outer lock,
//! *drop it*, and then lock only their tenant — so a slow replan for one
//! tenant no longer serializes every other tenant's traffic behind it.
//! Registry-shaped endpoints (create/delete/list/metrics/snapshot/reload)
//! still run under the outer lock; list/metrics/snapshot additionally take
//! every tenant lock in id order for a consistent cut. Per-tenant request
//! order remains the only source of nondeterminism, exactly as before.
//!
//! Graceful reload: `POST /v1/reload` flips the draining flag (new
//! requests get 503), waits until it is the only request in flight, swaps
//! the registry for the one restored from the snapshot path, and lifts the
//! flag. In-flight requests finish against the old registry; nothing is
//! interrupted mid-plan.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use erms_telemetry::metrics::MetricsRegistry;

use crate::codec::{app_from_json, plan_to_json, span_batch_from_json, workloads_from_json};
use crate::http::{Handler, Request, Response, Server};
use crate::json::Json;
use crate::snapshot;
use crate::tenant::{DecisionRecord, Registry, Tenant};

/// Configuration of a control-plane instance.
#[derive(Debug, Clone)]
pub struct ControlPlaneConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Where `POST /v1/snapshot` writes and `POST /v1/reload` reads.
    /// `None` disables both endpoints (they answer 400).
    pub snapshot_path: Option<PathBuf>,
}

impl Default for ControlPlaneConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            snapshot_path: None,
        }
    }
}

struct Shared {
    registry: Mutex<Registry>,
    draining: AtomicBool,
    in_flight: AtomicU64,
    requests: AtomicU64,
    stop: AtomicBool,
    snapshot_path: Option<PathBuf>,
}

/// A running control-plane service.
pub struct ControlPlane {
    server: Server,
    shared: Arc<Shared>,
}

impl ControlPlane {
    /// Starts the service over an existing registry (usually
    /// [`Registry::paper_pool`] or a snapshot restore).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ControlPlaneConfig, registry: Registry) -> std::io::Result<Self> {
        let shared = Arc::new(Shared {
            registry: Mutex::new(registry),
            draining: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            snapshot_path: config.snapshot_path,
        });
        let routed = Arc::clone(&shared);
        let handler: Handler = Arc::new(move |req: &Request| {
            routed.requests.fetch_add(1, Ordering::SeqCst);
            routed.in_flight.fetch_add(1, Ordering::SeqCst);
            let response = route(&routed, req);
            routed.in_flight.fetch_sub(1, Ordering::SeqCst);
            response
        });
        let server = Server::bind(&config.addr, config.workers, handler)?;
        Ok(Self { server, shared })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.addr()
    }

    /// Whether `POST /v1/shutdown` has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Runs until a shutdown request arrives, then stops the server
    /// gracefully (in-flight requests finish). This is what `erms-cli
    /// serve` blocks on.
    pub fn wait(self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(25));
        }
        self.server.shutdown();
    }

    /// Stops immediately (tests and benches).
    pub fn stop(self) {
        self.server.shutdown();
    }

    /// Direct access to the registry, bypassing HTTP — used by benches to
    /// seed state without paying the wire cost. Holds the outer lock for
    /// the duration of `f`; prefer [`Self::with_tenant`] for tenant work.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned (a handler panicked).
    pub fn with_registry<R>(&self, f: impl FnOnce(&mut Registry) -> R) -> R {
        let mut registry = self.shared.registry.lock().expect("registry poisoned");
        f(&mut registry)
    }

    /// Direct access to one tenant, bypassing HTTP. Resolves the handle
    /// under the outer lock, releases it, then runs `f` under the tenant's
    /// own lock — the same discipline the per-tenant handlers follow.
    /// Returns `None` if the tenant does not exist.
    ///
    /// # Panics
    ///
    /// Panics if the registry or tenant lock is poisoned.
    pub fn with_tenant<R>(&self, id: &str, f: impl FnOnce(&mut Tenant) -> R) -> Option<R> {
        let handle = tenant_handle(&self.shared, id)?;
        let mut tenant = handle.lock().expect("tenant poisoned");
        Some(f(&mut tenant))
    }
}

/// Resolves a tenant's lock handle under a brief outer-lock hold.
fn tenant_handle(shared: &Shared, id: &str) -> Option<Arc<Mutex<Tenant>>> {
    shared
        .registry
        .lock()
        .expect("registry poisoned")
        .tenant(id)
}

fn err_json(status: u16, message: &str) -> Response {
    let body = Json::obj(vec![("error", Json::str(message))]).render();
    Response::json(status, body)
}

fn ok_json(json: Json) -> Response {
    Response::json(200, json.render())
}

fn route(shared: &Arc<Shared>, req: &Request) -> Response {
    let segments = req.segments();
    // The health probe and the reload endpoint must work while draining;
    // everything else is refused so the drain can converge.
    let draining_exempt = matches!(segments.as_slice(), ["healthz"] | ["v1", "reload"]);
    if shared.draining.load(Ordering::SeqCst) && !draining_exempt {
        return err_json(503, "draining: retry shortly");
    }
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => healthz(shared),
        ("GET", ["metrics"]) => metrics(shared),
        ("GET", ["v1", "tenants"]) => list_tenants(shared),
        ("POST", ["v1", "tenants"]) => create_tenant(shared, req),
        ("GET", ["v1", "tenants", id]) => tenant_status(shared, id),
        ("DELETE", ["v1", "tenants", id]) => delete_tenant(shared, id),
        ("POST", ["v1", "tenants", id, "spans"]) => ingest_spans(shared, id, req),
        ("POST", ["v1", "tenants", id, "workloads"]) => set_workloads(shared, id, req),
        ("GET", ["v1", "tenants", id, "plan"]) => get_plan(shared, id),
        ("POST", ["v1", "tenants", id, "replan"]) => replan(shared, id),
        ("GET", ["v1", "tenants", id, "history"]) => history(shared, id),
        ("POST", ["v1", "snapshot"]) => take_snapshot(shared),
        ("POST", ["v1", "reload"]) => reload(shared),
        ("POST", ["v1", "shutdown"]) => {
            shared.stop.store(true, Ordering::SeqCst);
            ok_json(Json::obj(vec![("stopping", Json::Bool(true))]))
        }
        (_, ["healthz" | "metrics"]) | (_, ["v1", ..]) => {
            err_json(405, "method not allowed for this path")
        }
        _ => err_json(404, "no such route"),
    }
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| err_json(400, "body must be UTF-8 JSON"))?;
    Json::parse(text).map_err(|e| err_json(400, &format!("invalid JSON: {e}")))
}

fn healthz(shared: &Arc<Shared>) -> Response {
    let tenants = shared.registry.lock().expect("registry poisoned").len();
    ok_json(Json::obj(vec![
        ("status", Json::str("ok")),
        ("tenants", Json::Num(tenants as f64)),
        (
            "requests",
            Json::Num(shared.requests.load(Ordering::SeqCst) as f64),
        ),
        (
            "draining",
            Json::Bool(shared.draining.load(Ordering::SeqCst)),
        ),
    ]))
}

fn sanitize_metric(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn metrics(shared: &Arc<Shared>) -> Response {
    let mut out = String::new();
    let mut registry = shared.registry.lock().expect("registry poisoned");
    registry.pool_usage(); // refresh pool gauges before rendering
    out.push_str(&format!(
        "erms_control_requests_total {}\n",
        shared.requests.load(Ordering::SeqCst)
    ));
    out.push_str(&format!("erms_control_tenants {}\n", registry.len()));
    for (name, value) in registry.metrics.counters() {
        out.push_str(&format!("erms_{} {value}\n", sanitize_metric(name)));
    }
    for (name, value) in registry.metrics.gauges() {
        out.push_str(&format!("erms_{} {value}\n", sanitize_metric(name)));
    }
    for tenant in registry.lock_tenants() {
        let mut per_tenant = MetricsRegistry::new();
        tenant.record_metrics(&mut per_tenant);
        for (name, value) in per_tenant.counters() {
            out.push_str(&format!(
                "erms_{}{{tenant=\"{}\"}} {value}\n",
                sanitize_metric(name),
                tenant.id
            ));
        }
        for (name, value) in per_tenant.gauges() {
            out.push_str(&format!(
                "erms_{}{{tenant=\"{}\"}} {value}\n",
                sanitize_metric(name),
                tenant.id
            ));
        }
    }
    Response::text(200, out)
}

fn tenant_summary(t: &Tenant) -> Json {
    Json::obj(vec![
        ("id", Json::str(&t.id)),
        ("app", Json::str(t.app.name())),
        (
            "microservices",
            Json::Num(t.app.microservice_count() as f64),
        ),
        ("services", Json::Num(t.app.service_count() as f64)),
        ("rounds", Json::Num(t.history.len() as f64)),
        ("spans_ingested", Json::Num(t.spans_ingested as f64)),
        ("samples_ingested", Json::Num(t.samples_ingested as f64)),
        ("has_plan", Json::Bool(t.plan().is_some())),
        (
            "plan_containers",
            t.plan()
                .map_or(Json::Null, |p| Json::Num(p.total_containers() as f64)),
        ),
    ])
}

fn list_tenants(shared: &Arc<Shared>) -> Response {
    let registry = shared.registry.lock().expect("registry poisoned");
    let tenants = registry.lock_tenants();
    ok_json(Json::Arr(
        tenants.iter().map(|t| tenant_summary(t)).collect(),
    ))
}

fn create_tenant(shared: &Arc<Shared>, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(e) => return e,
    };
    let Some(id) = body.get("id").and_then(Json::as_str) else {
        return err_json(400, "missing string field `id`");
    };
    let Some(app_json) = body.get("app") else {
        return err_json(400, "missing field `app`");
    };
    let app = match app_from_json(app_json) {
        Ok(app) => app,
        Err(e) => return err_json(400, &e),
    };
    let id = id.to_string();
    let mut registry = shared.registry.lock().expect("registry poisoned");
    match registry.create(&id, app) {
        Ok(handle) => {
            let tenant = handle.lock().expect("tenant poisoned");
            Response::json(201, tenant_summary(&tenant).render())
        }
        Err(e) => err_json(409, &e),
    }
}

fn tenant_status(shared: &Arc<Shared>, id: &str) -> Response {
    let Some(handle) = tenant_handle(shared, id) else {
        return err_json(404, &format!("no tenant `{id}`"));
    };
    let tenant = handle.lock().expect("tenant poisoned");
    ok_json(tenant_summary(&tenant))
}

fn delete_tenant(shared: &Arc<Shared>, id: &str) -> Response {
    let mut registry = shared.registry.lock().expect("registry poisoned");
    if registry.remove(id) {
        ok_json(Json::obj(vec![("deleted", Json::str(id))]))
    } else {
        err_json(404, &format!("no tenant `{id}`"))
    }
}

fn ingest_spans(shared: &Arc<Shared>, id: &str, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(e) => return e,
    };
    let batch = match span_batch_from_json(&body) {
        Ok(b) => b,
        Err(e) => return err_json(400, &e),
    };
    let Some(handle) = tenant_handle(shared, id) else {
        return err_json(404, &format!("no tenant `{id}`"));
    };
    let mut tenant = handle.lock().expect("tenant poisoned");
    match tenant.ingest(&batch) {
        Ok(added) => ok_json(Json::obj(vec![
            ("spans", Json::Num(batch.spans.len() as f64)),
            ("samples_added", Json::Num(added as f64)),
        ])),
        Err(e) => err_json(400, &e),
    }
}

fn set_workloads(shared: &Arc<Shared>, id: &str, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(e) => return e,
    };
    let workloads = match workloads_from_json(&body) {
        Ok(w) => w,
        Err(e) => return err_json(400, &e),
    };
    let Some(handle) = tenant_handle(shared, id) else {
        return err_json(404, &format!("no tenant `{id}`"));
    };
    let mut tenant = handle.lock().expect("tenant poisoned");
    let count = workloads.iter().count();
    tenant.workloads = workloads;
    ok_json(Json::obj(vec![("services", Json::Num(count as f64))]))
}

fn get_plan(shared: &Arc<Shared>, id: &str) -> Response {
    let Some(handle) = tenant_handle(shared, id) else {
        return err_json(404, &format!("no tenant `{id}`"));
    };
    let tenant = handle.lock().expect("tenant poisoned");
    match tenant.plan() {
        Some(plan) => ok_json(plan_to_json(plan)),
        None => err_json(404, "no plan applied yet: run a replan first"),
    }
}

fn record_to_json(r: &DecisionRecord) -> Json {
    Json::obj(vec![
        ("round", Json::Num(r.round as f64)),
        ("scheme", Json::str(&r.scheme)),
        ("total_containers", Json::Num(r.total_containers as f64)),
        ("refitted", Json::Num(r.refitted as f64)),
        (
            "actions",
            Json::Arr(r.actions.iter().map(Json::str).collect()),
        ),
        (
            "errors",
            Json::Arr(r.errors.iter().map(Json::str).collect()),
        ),
        ("degraded", Json::Bool(r.degraded)),
        ("skipped", Json::Bool(r.skipped)),
    ])
}

fn replan(shared: &Arc<Shared>, id: &str) -> Response {
    let Some(handle) = tenant_handle(shared, id) else {
        return err_json(404, &format!("no tenant `{id}`"));
    };
    let mut tenant = handle.lock().expect("tenant poisoned");
    let record = tenant.replan().clone();
    let plan = tenant.plan().map_or(Json::Null, crate::codec::plan_to_json);
    ok_json(Json::obj(vec![
        ("decision", record_to_json(&record)),
        ("plan", plan),
    ]))
}

fn history(shared: &Arc<Shared>, id: &str) -> Response {
    let Some(handle) = tenant_handle(shared, id) else {
        return err_json(404, &format!("no tenant `{id}`"));
    };
    let tenant = handle.lock().expect("tenant poisoned");
    ok_json(Json::Arr(
        tenant.history.iter().map(record_to_json).collect(),
    ))
}

fn take_snapshot(shared: &Arc<Shared>) -> Response {
    let Some(path) = shared.snapshot_path.as_deref() else {
        return err_json(400, "no snapshot path configured (start with --snapshot)");
    };
    let registry = shared.registry.lock().expect("registry poisoned");
    match snapshot::save(&registry, path) {
        Ok(bytes) => ok_json(Json::obj(vec![
            ("bytes", Json::Num(bytes as f64)),
            ("path", Json::str(path.to_string_lossy())),
            ("tenants", Json::Num(registry.len() as f64)),
        ])),
        Err(e) => err_json(500, &format!("snapshot write failed: {e}")),
    }
}

fn reload(shared: &Arc<Shared>) -> Response {
    let Some(path) = shared.snapshot_path.as_deref() else {
        return err_json(400, "no snapshot path configured (start with --snapshot)");
    };
    if shared
        .draining
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return err_json(409, "a reload is already in progress");
    }
    // Drain: wait until this request is the only one in flight. New
    // requests are already being refused with 503.
    let mut spins = 0u32;
    while shared.in_flight.load(Ordering::SeqCst) > 1 {
        std::thread::sleep(Duration::from_millis(1));
        spins += 1;
        if spins > 30_000 {
            shared.draining.store(false, Ordering::SeqCst);
            return err_json(500, "drain timed out; reload aborted");
        }
    }
    let result = snapshot::load(path);
    let response = match result {
        Ok(restored) => {
            let tenants = restored.len();
            *shared.registry.lock().expect("registry poisoned") = restored;
            ok_json(Json::obj(vec![
                ("reloaded", Json::Bool(true)),
                ("tenants", Json::Num(tenants as f64)),
            ]))
        }
        Err(e) => err_json(500, &format!("reload failed, old state kept: {e}")),
    };
    shared.draining.store(false, Ordering::SeqCst);
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::app_to_json;
    use crate::http::Client;
    use erms_core::app::{AppBuilder, Sla};
    use erms_core::latency::LatencyProfile;
    use erms_core::resources::Resources;

    fn app_json() -> String {
        let mut b = AppBuilder::new("demo");
        let m = b.microservice(
            "m",
            LatencyProfile::kneed(0.002, 3.0, 0.02, 9000.0),
            Resources::new(0.1, 200.0),
        );
        b.service("s", Sla::p95_ms(100.0), |g| {
            g.entry(m);
        });
        let app = b.build().unwrap();
        Json::obj(vec![("id", Json::str("demo")), ("app", app_to_json(&app))]).render()
    }

    #[test]
    fn lifecycle_create_workload_replan_plan() {
        let plane = ControlPlane::start(ControlPlaneConfig::default(), Registry::paper_pool())
            .expect("start");
        let mut client = Client::new(plane.addr()).unwrap();

        let (status, _) = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);

        let (status, _) = client
            .request("POST", "/v1/tenants", Some(app_json().as_bytes()))
            .unwrap();
        assert_eq!(status, 201);

        let (status, _) = client
            .request(
                "POST",
                "/v1/tenants/demo/workloads",
                Some(b"[[0, 30000.0]]"),
            )
            .unwrap();
        assert_eq!(status, 200);

        let (status, _) = client
            .request("GET", "/v1/tenants/demo/plan", None)
            .unwrap();
        assert_eq!(status, 404, "no plan before the first replan");

        let (status, body) = client
            .request("POST", "/v1/tenants/demo/replan", None)
            .unwrap();
        assert_eq!(status, 200);
        let body = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert!(body.get("plan").is_some());

        let (status, body) = client
            .request("GET", "/v1/tenants/demo/plan", None)
            .unwrap();
        assert_eq!(status, 200);
        let plan = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(plan.get("scheme").and_then(Json::as_str), Some("erms"));

        let (status, body) = client.request("GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        assert!(
            text.contains("erms_planner_rounds{tenant=\"demo\"}"),
            "{text}"
        );

        let (status, _) = client.request("DELETE", "/v1/tenants/demo", None).unwrap();
        assert_eq!(status, 200);
        let (status, _) = client.request("GET", "/v1/tenants/demo", None).unwrap();
        assert_eq!(status, 404);

        plane.stop();
    }

    #[test]
    fn unknown_routes_and_methods_are_refused() {
        let plane = ControlPlane::start(ControlPlaneConfig::default(), Registry::paper_pool())
            .expect("start");
        let mut client = Client::new(plane.addr()).unwrap();
        let (status, _) = client.request("GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = client.request("DELETE", "/healthz", None).unwrap();
        assert_eq!(status, 405);
        let (status, _) = client
            .request("POST", "/v1/tenants", Some(b"not json"))
            .unwrap();
        assert_eq!(status, 400);
        let (status, _) = client.request("POST", "/v1/snapshot", None).unwrap();
        assert_eq!(status, 400, "no snapshot path configured");
        plane.stop();
    }

    #[test]
    fn shutdown_endpoint_flags_the_server() {
        let plane = ControlPlane::start(ControlPlaneConfig::default(), Registry::paper_pool())
            .expect("start");
        let mut client = Client::new(plane.addr()).unwrap();
        assert!(!plane.shutdown_requested());
        let (status, _) = client.request("POST", "/v1/shutdown", None).unwrap();
        assert_eq!(status, 200);
        assert!(plane.shutdown_requested());
        plane.wait();
    }
}
