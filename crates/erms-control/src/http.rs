//! A minimal HTTP/1.1 layer over `std::net` — no async runtime, no
//! external crates.
//!
//! The server is an acceptor thread plus a bounded pool of worker
//! threads. Accepted connections are handed to workers over an mpsc
//! channel; each worker runs a keep-alive loop (Content-Length framing
//! only — no chunked encoding, which none of our clients produce) and
//! dispatches complete requests to a shared handler. Shutdown is
//! cooperative: a flag is set, the acceptor is unblocked with a
//! self-connect, the channel is dropped, and workers drain.
//!
//! The client half ([`Client`]) is a blocking keep-alive connection used
//! by the CLI, the benches and the loopback integration harness. It
//! reconnects once transparently when the pooled connection was closed
//! under it (idle timeout on the server side).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
const MAX_BODY_BYTES: usize = 32 * 1024 * 1024;
/// How long a worker waits for the next request on an idle keep-alive
/// connection before closing it.
const KEEP_ALIVE_TIMEOUT: Duration = Duration::from_secs(5);

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string (`/v1/tenants/a/plan`).
    pub path: String,
    /// Raw query string after `?`, if any.
    pub query: Option<String>,
    /// Body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Splits the path into non-empty segments: `/v1/tenants/a` →
    /// `["v1", "tenants", "a"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// One HTTP response. Construct through the helpers, which fix the
/// content type.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into().into_bytes(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// The request handler shared by all workers.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A running HTTP server. Dropping it without calling
/// [`shutdown`](Server::shutdown) aborts the process-exit path less
/// gracefully (threads are detached), so call `shutdown` when done.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    requests: Arc<AtomicU64>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor plus `workers` worker threads.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, workers: usize, handler: Handler) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = mpsc::channel();
        let rx = Arc::new(Mutex::new(rx));

        let worker_count = workers.max(1);
        let mut pool = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            let stop = Arc::clone(&stop);
            let requests = Arc::clone(&requests);
            pool.push(std::thread::spawn(move || loop {
                // Holding the lock only while receiving keeps the pool
                // work-stealing: whichever worker is free picks up the
                // next connection.
                let conn = { rx.lock().expect("worker queue poisoned").recv() };
                match conn {
                    Ok(stream) => serve_connection(stream, &handler, &stop, &requests),
                    Err(_) => return, // channel closed: shutdown
                }
            }));
        }

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // If every worker exited (shutdown race), sending
                        // fails and the connection is simply dropped.
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                }
                // tx drops here; workers drain the queue and exit.
            })
        };

        Ok(Self {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers: pool,
            requests,
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests served so far.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::SeqCst)
    }

    /// Whether shutdown has been requested (e.g. by
    /// [`request_shutdown`](Server::request_shutdown)).
    pub fn shutdown_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// A handle that lets a request handler flag the server for shutdown
    /// (the `POST /v1/shutdown` endpoint).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Stops accepting, drains the workers and joins every thread.
    /// In-flight requests complete; idle keep-alive connections close.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept with a throwaway
        // connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Runs the keep-alive loop of one connection.
fn serve_connection(stream: TcpStream, handler: &Handler, stop: &AtomicBool, requests: &AtomicU64) {
    let _ = stream.set_read_timeout(Some(KEEP_ALIVE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let peer = stream.try_clone();
    let Ok(write_half) = peer else { return };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let (request, keep_alive) = match read_request(&mut reader) {
            Ok(Some(parsed)) => parsed,
            Ok(None) => return, // clean EOF between requests
            Err(status) => {
                if let Some(status) = status {
                    let body = format!("{{\"error\":{:?}}}", reason(status));
                    let _ = write_response(&mut write_half, &Response::json(status, body), false);
                }
                return;
            }
        };
        requests.fetch_add(1, Ordering::SeqCst);
        let response = handler(&request);
        let keep_alive = keep_alive && !stop.load(Ordering::SeqCst);
        if write_response(&mut write_half, &response, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Reads one request. `Ok(None)` is a clean EOF before any byte of a new
/// request; `Err(Some(status))` asks the caller to answer with an error
/// status; `Err(None)` means the connection is unusable (timeout, half
/// request).
#[allow(clippy::type_complexity)]
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<(Request, bool)>, Option<u16>> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(_) => return Err(None), // timeout or reset on an idle connection
    }
    let line = line.trim_end();
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(Some(400));
    };
    let version = parts.next().unwrap_or("HTTP/1.1");
    let http11 = version == "HTTP/1.1";

    let mut content_length = 0usize;
    let mut connection_close = !http11;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return Err(None),
            Ok(n) => head_bytes += n,
            Err(_) => return Err(None),
        }
        if head_bytes > MAX_HEAD_BYTES {
            return Err(Some(413));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(Some(400));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| Some(400))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(Some(413));
                }
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    connection_close = true;
                } else if v.contains("keep-alive") {
                    connection_close = false;
                }
            }
            _ => {}
        }
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(|_| None)?;
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    Ok(Some((
        Request {
            method: method.to_ascii_uppercase(),
            path,
            query,
            body,
        },
        !connection_close,
    )))
}

fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        connection,
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// A blocking keep-alive HTTP/1.1 client for loopback use.
pub struct Client {
    addr: SocketAddr,
    stream: Option<BufReader<TcpStream>>,
}

impl Client {
    /// Resolves `addr` (e.g. `"127.0.0.1:8080"`); the connection itself
    /// is established lazily on the first request.
    ///
    /// # Errors
    ///
    /// Fails when `addr` does not resolve.
    pub fn new(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
        Ok(Self { addr, stream: None })
    }

    /// Sends one request and reads the full response. Reuses the pooled
    /// connection; when the server closed it in the meantime, reconnects
    /// and retries once.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<(u16, Vec<u8>)> {
        let fresh = self.stream.is_none();
        match self.try_request(method, path, body) {
            Ok(result) => Ok(result),
            Err(e) if !fresh => {
                // The pooled connection was stale (server idle-closed it):
                // reconnect once and retry. Requests here are idempotent
                // at-most-once writes from our own harness, so a single
                // transparent retry is safe.
                let _ = e;
                self.stream = None;
                self.try_request(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<(u16, Vec<u8>)> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            self.stream = Some(BufReader::new(stream));
        }
        let reader = self.stream.as_mut().expect("just connected");
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: erms-control\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len(),
        );
        {
            let stream = reader.get_mut();
            stream.write_all(head.as_bytes())?;
            stream.write_all(body)?;
            stream.flush()?;
        }

        let mut status_line = String::new();
        if reader.read_line(&mut status_line)? == 0 {
            self.stream = None;
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before the status line",
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
            })?;

        let mut content_length = 0usize;
        let mut close = false;
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 {
                self.stream = None;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed inside the response head",
                ));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                match name.trim().to_ascii_lowercase().as_str() {
                    "content-length" => {
                        content_length = value.trim().parse().map_err(|_| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                "bad content-length",
                            )
                        })?;
                    }
                    "connection" => {
                        close = value.trim().eq_ignore_ascii_case("close");
                    }
                    _ => {}
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        if close {
            self.stream = None;
        }
        Ok((status, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> Server {
        let handler: Handler = Arc::new(|req: &Request| {
            let body = format!(
                "{} {} q={} len={}",
                req.method,
                req.path,
                req.query.as_deref().unwrap_or("-"),
                req.body.len()
            );
            Response::text(200, body)
        });
        Server::bind("127.0.0.1:0", 2, handler).expect("bind")
    }

    #[test]
    fn request_response_over_keep_alive() {
        let server = echo_server();
        let mut client = Client::new(server.addr()).unwrap();
        for i in 0..5 {
            let (status, body) = client.request("GET", &format!("/x/{i}?a=1"), None).unwrap();
            assert_eq!(status, 200);
            assert_eq!(
                String::from_utf8(body).unwrap(),
                format!("GET /x/{i} q=a=1 len=0")
            );
        }
        let (status, body) = client.request("POST", "/ingest", Some(b"12345")).unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8(body).unwrap().ends_with("len=5"));
        server.shutdown();
    }

    #[test]
    fn parallel_clients_are_served() {
        let server = echo_server();
        let addr = server.addr();
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(move || {
                let mut client = Client::new(addr).unwrap();
                for _ in 0..20 {
                    let (status, _) = client.request("GET", "/ping", None).unwrap();
                    assert_eq!(status, 200);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.request_count(), 80);
        server.shutdown();
    }

    #[test]
    fn malformed_request_line_gets_400() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"garbage\r\n\r\n").unwrap();
        let mut response = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_line(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_and_port_is_released() {
        let server = echo_server();
        let addr = server.addr();
        let mut client = Client::new(addr).unwrap();
        let _ = client.request("GET", "/", None).unwrap();
        server.shutdown();
        // After shutdown the listener is gone; either the connection is
        // refused or the accepted socket is dropped without an answer.
        let mut c2 = Client::new(addr).unwrap();
        assert!(c2.request("GET", "/", None).is_err());
    }
}
