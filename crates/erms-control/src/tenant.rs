//! The multi-tenant registry: many applications sharing one
//! microservice pool, each with its own profiling → planning → fallback
//! loop.
//!
//! # Locking
//!
//! The registry map itself sits behind the server's outer lock, held
//! only long enough to resolve an id to its tenant handle; each tenant's
//! mutable state lives under its **own** [`Mutex`], so two tenants'
//! replans and span ingests proceed concurrently. The lock hierarchy is
//! strictly *outer lock → tenant lock* (never the reverse, and
//! registry-wide operations such as snapshots acquire tenant locks in id
//! order via [`Registry::lock_tenants`]), which makes deadlock
//! impossible by construction. A panicked round poisons only its own
//! tenant; the registry and all other tenants keep serving.
//!
//! # Tenant isolation
//!
//! Every tenant plans against its **own** [`ClusterState`] view,
//! instantiated from the shared pool template. This is deliberate, not an
//! approximation: `MicroserviceId`s are dense per-application indices, so
//! two tenants' microservice 0 would collide in a shared host container
//! map, and — more importantly — a shared state would let one tenant's
//! placements shift another tenant's `average_interference` and therefore
//! its plan *bits*. With per-tenant views, a tenant's plan is a pure
//! function of its own telemetry and workloads; the registry still
//! accounts for the **aggregate** pool usage across tenants and surfaces
//! over-subscription as a gauge and a warning flag, without ever touching
//! plan arithmetic. The snapshot-equivalence and isolation tests pin both
//! properties.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use erms_core::app::{App, WorkloadVector};
use erms_core::autoscaler::ScalingPlan;
use erms_core::provisioning::{ClusterState, Host};
use erms_core::resilience::{ResilienceConfig, ResilientManager};
use erms_telemetry::metrics::{record_planner_metrics, record_resilience, MetricsRegistry};
use erms_telemetry::online::OnlineProfiler;

use crate::codec::SpanBatch;

/// One entry of a tenant's scaling-decision history — the audit record the
/// `GET /v1/tenants/{id}/history` endpoint serves.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Controller round the decision was made in (1-based).
    pub round: u64,
    /// Scheme name of the applied plan.
    pub scheme: String,
    /// Total containers the plan requested.
    pub total_containers: u64,
    /// How many microservice profiles were re-fitted before planning.
    pub refitted: usize,
    /// Fallback-ladder actions taken this round (debug-rendered).
    pub actions: Vec<String>,
    /// Errors absorbed by the ladder this round (rendered).
    pub errors: Vec<String>,
    /// Whether any fallback rung fired.
    pub degraded: bool,
    /// Whether the round was skipped outright (cluster left untouched).
    pub skipped: bool,
}

/// One tenant: an application, its telemetry-driven profiler, its
/// resilient planning loop, and its private view of the pool.
#[derive(Debug)]
pub struct Tenant {
    /// Tenant identifier (the `{id}` path segment).
    pub id: String,
    /// Current application model (swapped on refit).
    pub app: App,
    /// Online profiler accumulating windowed span observations.
    pub profiler: OnlineProfiler,
    /// The resilient planning loop.
    pub manager: ResilientManager,
    /// This tenant's view of the shared pool.
    pub cluster: ClusterState,
    /// Most recent per-service request rates.
    pub workloads: WorkloadVector,
    /// Scaling-decision audit trail, oldest first.
    pub history: Vec<DecisionRecord>,
    /// Raw spans accepted over the API.
    pub spans_ingested: u64,
    /// Windowed samples actually added to the profiler.
    pub samples_ingested: u64,
}

impl Tenant {
    /// Creates a tenant planning against a fresh pool view.
    pub fn new(id: impl Into<String>, app: App, pool: &[Host]) -> Self {
        Self {
            id: id.into(),
            app,
            profiler: OnlineProfiler::new(),
            manager: ResilientManager::new(ResilienceConfig::default()),
            cluster: ClusterState::new(pool.to_vec()),
            workloads: WorkloadVector::new(),
            history: Vec::new(),
            spans_ingested: 0,
            samples_ingested: 0,
        }
    }

    /// The last applied plan, if any round has produced one.
    pub fn plan(&self) -> Option<&ScalingPlan> {
        self.manager.last_applied()
    }

    /// Ingests one span batch into the profiler. When the batch does not
    /// carry its own deployment map, the containers of the last applied
    /// plan are used (the common steady-state case: the DES runs the plan
    /// the control plane just produced).
    ///
    /// # Errors
    ///
    /// Rejects a batch with no usable deployment (no containers in the
    /// batch and no plan applied yet) — γ would be undefined.
    pub fn ingest(&mut self, batch: &SpanBatch) -> Result<usize, String> {
        let containers: BTreeMap<_, _> = if batch.containers.is_empty() {
            match self.plan() {
                Some(plan) => plan.iter().collect(),
                None => return Err(
                    "no deployment known: send `containers` with the batch or apply a plan first"
                        .into(),
                ),
            }
        } else {
            batch.containers.clone()
        };
        let itf = self.cluster.average_interference(&self.app);
        let added =
            self.profiler
                .ingest_spans(batch.spans.iter(), &containers, itf, batch.sampling);
        self.spans_ingested += batch.spans.len() as u64;
        self.samples_ingested += added as u64;
        Ok(added)
    }

    /// Runs one control round: re-fit profiles from accumulated telemetry,
    /// swap the refreshed application model in, then plan/apply through
    /// the resilience ladder. Returns the history record of the round.
    ///
    /// The refit → swap happens *unconditionally* (the outcome app equals
    /// the old one bit-for-bit when nothing was re-fitted), so a restored
    /// tenant replaying this method from snapshotted samples walks exactly
    /// the same app sequence as the uninterrupted process.
    pub fn replan(&mut self) -> &DecisionRecord {
        let refit = self.profiler.refit(&self.app);
        let refitted = refit.refitted.len();
        self.app = refit.app;
        let outcome = self
            .manager
            .run_round(&self.app, &mut self.cluster, &self.workloads);
        let (scheme, total_containers) = match &outcome.plan {
            Some(plan) => (plan.scheme.clone(), plan.total_containers()),
            None => ("none".to_string(), 0),
        };
        let record = DecisionRecord {
            round: outcome.report.round,
            scheme,
            total_containers,
            refitted,
            actions: outcome
                .report
                .actions
                .iter()
                .map(|a| format!("{a:?}"))
                .collect(),
            errors: outcome
                .report
                .errors
                .iter()
                .map(|e| e.to_string())
                .collect(),
            degraded: outcome.report.degraded(),
            skipped: outcome.report.skipped(),
        };
        self.history.push(record);
        self.history.last().expect("just pushed")
    }

    /// Mirrors this tenant's planner/resilience counters into a metrics
    /// registry (standard `planner.*` / `resilience.*` names; the server
    /// adds the tenant label when rendering).
    pub fn record_metrics(&self, registry: &mut MetricsRegistry) {
        record_planner_metrics(
            registry,
            &self.manager.planner_metrics(),
            Some(self.manager.plan_cache()),
        );
        record_resilience(registry, self.manager.history());
        registry.set_counter("control.spans_ingested", self.spans_ingested);
        registry.set_counter("control.samples_ingested", self.samples_ingested);
        registry.set_gauge(
            "control.plan_containers",
            self.plan().map_or(0.0, |p| p.total_containers() as f64),
        );
        registry.set_gauge(
            "control.cluster_containers",
            self.cluster.total_containers() as f64,
        );
    }
}

/// Aggregate pool accounting across tenants. Purely observational: the
/// planner never sees these numbers, so they cannot perturb plan bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolUsage {
    /// CPU cores requested by all tenants' current plans together.
    pub requested_cpu: f64,
    /// Memory (MB) requested by all tenants' current plans together.
    pub requested_mem: f64,
    /// CPU capacity of the shared pool.
    pub capacity_cpu: f64,
    /// Memory capacity of the shared pool.
    pub capacity_mem: f64,
}

impl PoolUsage {
    /// Whether the tenants together over-subscribe the physical pool.
    pub fn oversubscribed(&self) -> bool {
        self.requested_cpu > self.capacity_cpu || self.requested_mem > self.capacity_mem
    }
}

/// The tenant registry: an id → tenant-handle map plus the shared pool
/// template. The map is guarded by the server's short-held outer lock;
/// each [`Tenant`] is guarded by its own `Mutex` (see the module docs
/// for the lock hierarchy).
#[derive(Debug)]
pub struct Registry {
    pool: Vec<Host>,
    tenants: BTreeMap<String, Arc<Mutex<Tenant>>>,
    /// Control-plane-level counters (request totals, pool gauges).
    pub metrics: MetricsRegistry,
}

impl Registry {
    /// Creates a registry over a pool template. Every tenant created later
    /// receives a fresh view of exactly these hosts.
    pub fn new(pool: Vec<Host>) -> Self {
        Self {
            pool,
            tenants: BTreeMap::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// A registry over the paper's 20-host cluster (§6.1).
    pub fn paper_pool() -> Self {
        let mut hosts = Vec::with_capacity(20);
        for _ in 0..20 {
            hosts.push(Host::paper_host());
        }
        Self::new(hosts)
    }

    /// The pool template.
    pub fn pool(&self) -> &[Host] {
        &self.pool
    }

    /// Registers a tenant, returning its handle.
    ///
    /// # Errors
    ///
    /// Rejects an id that is already registered or empty.
    pub fn create(&mut self, id: &str, app: App) -> Result<Arc<Mutex<Tenant>>, String> {
        if id.is_empty() {
            return Err("tenant id must be non-empty".into());
        }
        if self.tenants.contains_key(id) {
            return Err(format!("tenant `{id}` already exists"));
        }
        let tenant = Arc::new(Mutex::new(Tenant::new(id, app, &self.pool)));
        self.tenants.insert(id.to_string(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Inserts an already-built tenant (snapshot restore path). Replaces
    /// any existing tenant with the same id.
    pub fn insert(&mut self, tenant: Tenant) {
        self.tenants
            .insert(tenant.id.clone(), Arc::new(Mutex::new(tenant)));
    }

    /// Removes a tenant, returning whether it existed. A handler still
    /// holding the tenant's handle finishes its request against the
    /// detached state; the registry simply stops resolving the id.
    pub fn remove(&mut self, id: &str) -> bool {
        self.tenants.remove(id).is_some()
    }

    /// The handle of a tenant: clone it out under the brief outer lock,
    /// drop the registry guard, then lock the tenant itself.
    pub fn tenant(&self, id: &str) -> Option<Arc<Mutex<Tenant>>> {
        self.tenants.get(id).map(Arc::clone)
    }

    /// Runs `f` against one locked tenant (convenience over
    /// [`Registry::tenant`] for callers already holding the outer lock —
    /// the hierarchy *outer → tenant* makes this safe).
    ///
    /// # Panics
    ///
    /// Panics if the tenant's lock is poisoned.
    pub fn with_tenant<R>(&self, id: &str, f: impl FnOnce(&mut Tenant) -> R) -> Option<R> {
        let handle = self.tenant(id)?;
        let mut tenant = handle.lock().expect("tenant poisoned");
        Some(f(&mut tenant))
    }

    /// Locks every tenant in id order and returns the guards — a
    /// consistent cut across the registry for snapshots and metrics
    /// rendering. The fixed order keeps concurrent whole-registry
    /// operations deadlock-free against each other.
    ///
    /// # Panics
    ///
    /// Panics if any tenant's lock is poisoned.
    pub fn lock_tenants(&self) -> Vec<MutexGuard<'_, Tenant>> {
        self.tenants
            .values()
            .map(|t| t.lock().expect("tenant poisoned"))
            .collect()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Sums requested resources across all tenants' applied plans against
    /// the physical pool capacity, and mirrors the result into the
    /// control-plane metrics (`pool.*` gauges plus an `oversubscribed`
    /// 0/1 gauge). Called by the server after every mutation.
    pub fn pool_usage(&mut self) -> PoolUsage {
        let capacity_cpu: f64 = self.pool.iter().map(|h| h.cpu_capacity).sum();
        let capacity_mem: f64 = self.pool.iter().map(|h| h.mem_capacity).sum();
        let mut requested_cpu = 0.0;
        let mut requested_mem = 0.0;
        for handle in self.tenants.values() {
            let tenant = handle.lock().expect("tenant poisoned");
            if let Some(plan) = tenant.plan() {
                for (ms, count) in plan.iter() {
                    if let Ok(micro) = tenant.app.microservice(ms) {
                        requested_cpu += micro.resources.cpu * f64::from(count);
                        requested_mem += micro.resources.memory_mb * f64::from(count);
                    }
                }
            }
        }
        let usage = PoolUsage {
            requested_cpu,
            requested_mem,
            capacity_cpu,
            capacity_mem,
        };
        self.metrics
            .set_gauge("pool.requested_cpu_cores", requested_cpu);
        self.metrics
            .set_gauge("pool.requested_mem_mb", requested_mem);
        self.metrics
            .set_gauge("pool.capacity_cpu_cores", capacity_cpu);
        self.metrics.set_gauge("pool.capacity_mem_mb", capacity_mem);
        self.metrics.set_gauge(
            "pool.oversubscribed",
            if usage.oversubscribed() { 1.0 } else { 0.0 },
        );
        usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erms_core::app::{AppBuilder, RequestRate, Sla};
    use erms_core::latency::LatencyProfile;
    use erms_core::resources::Resources;

    fn tiny_app(name: &str) -> App {
        let mut b = AppBuilder::new(name);
        let m = b.microservice(
            "m",
            LatencyProfile::kneed(0.002, 3.0, 0.02, 9000.0),
            Resources::new(0.1, 200.0),
        );
        b.service("s", Sla::p95_ms(100.0), |g| {
            g.entry(m);
        });
        b.build().unwrap()
    }

    #[test]
    fn tenants_are_isolated_views_of_one_pool() {
        let mut registry = Registry::paper_pool();
        registry.create("a", tiny_app("a")).unwrap();
        registry.create("b", tiny_app("b")).unwrap();
        assert!(registry.create("a", tiny_app("a2")).is_err());

        let rate = RequestRate::per_minute(30_000.0);
        for id in ["a", "b"] {
            registry
                .with_tenant(id, |t| {
                    t.workloads = WorkloadVector::uniform(&t.app, rate);
                    let record = t.replan();
                    assert!(!record.skipped, "{id}: {record:?}");
                })
                .unwrap();
        }
        // Solo run of the same app against a fresh registry must produce
        // the same plan bits: tenants cannot interfere.
        let mut solo = Registry::paper_pool();
        solo.create("a", tiny_app("a")).unwrap();
        solo.with_tenant("a", |t| {
            t.workloads = WorkloadVector::uniform(&t.app, rate);
            t.replan();
        })
        .unwrap();
        assert_eq!(
            solo.with_tenant("a", |t| t.plan().cloned()).unwrap(),
            registry.with_tenant("a", |t| t.plan().cloned()).unwrap()
        );
    }

    #[test]
    fn tenant_locks_allow_concurrent_rounds() {
        let mut registry = Registry::paper_pool();
        let a = registry.create("a", tiny_app("a")).unwrap();
        let b = registry.create("b", tiny_app("b")).unwrap();
        let rate = RequestRate::per_minute(30_000.0);
        // Both tenants replan from separate threads through their own
        // locks; neither blocks the other and both histories land intact.
        std::thread::scope(|s| {
            for handle in [&a, &b] {
                s.spawn(move || {
                    for _ in 0..5 {
                        let mut t = handle.lock().unwrap();
                        t.workloads = WorkloadVector::uniform(&t.app, rate);
                        t.replan();
                    }
                });
            }
        });
        assert_eq!(registry.with_tenant("a", |t| t.history.len()), Some(5));
        assert_eq!(registry.with_tenant("b", |t| t.history.len()), Some(5));
    }

    #[test]
    fn ingest_requires_a_known_deployment() {
        let mut registry = Registry::paper_pool();
        let handle = registry.create("a", tiny_app("a")).unwrap();
        let mut tenant = handle.lock().unwrap();
        let batch = SpanBatch {
            sampling: 1.0,
            containers: BTreeMap::new(),
            spans: Vec::new(),
        };
        assert!(tenant.ingest(&batch).is_err());
    }

    #[test]
    fn pool_usage_flags_oversubscription() {
        // Plan against the full paper pool, then re-home the tenant into
        // a registry whose pool template is one tiny host: the requested
        // resources now exceed capacity and the flag must trip.
        let mut registry = Registry::paper_pool();
        registry.create("a", tiny_app("a")).unwrap();
        registry
            .with_tenant("a", |t| {
                t.workloads = WorkloadVector::uniform(&t.app, RequestRate::per_minute(60_000.0));
                t.replan();
            })
            .unwrap();
        assert!(registry.pool_usage().requested_cpu > 0.0);
        assert!(!registry.pool_usage().oversubscribed());

        let mut cramped = Registry::new(vec![Host::new(0.05, 10.0)]);
        let filler = Tenant::new("x", tiny_app("x"), registry.pool());
        let tenant = registry
            .with_tenant("a", |t| std::mem::replace(t, filler))
            .unwrap();
        cramped.insert(tenant);
        let usage = cramped.pool_usage();
        assert!(usage.oversubscribed());
        assert_eq!(cramped.metrics.gauge("pool.oversubscribed"), Some(1.0));
    }
}
