//! Domain ↔ JSON codecs.
//!
//! Every numeric field goes through [`Json::Num`], whose serializer emits
//! the shortest decimal that round-trips the exact `f64` bits — so a
//! snapshot written and read back restores *bit-identical* state (the
//! foundation of the warm-restart equivalence test). The one value JSON
//! cannot carry is the infinite constant cut-off of
//! [`LatencyProfile::linear`]; it is encoded *structurally* as `null` and
//! decoded back to `f64::INFINITY`.
//!
//! Maps keyed by ids are encoded as arrays of pairs (ids are numbers and
//! JSON object keys must be strings); order follows the `BTreeMap`
//! iteration order, so encodings are canonical.

use std::collections::BTreeMap;

use erms_core::app::{App, AppBuilder, Microservice, RequestRate, Service, Sla, WorkloadVector};
use erms_core::autoscaler::ScalingPlan;
use erms_core::graph::{DependencyGraph, Node};
use erms_core::ids::{MicroserviceId, NodeId, ServiceId};
use erms_core::latency::{
    CutoffModel, CutoffNode, CutoffTree, Interference, Interval, LatencyProfile, Segment,
};
use erms_core::provisioning::{ClusterState, FailureDomain, Host, HostLifecycle};
use erms_core::resilience::ManagerState;
use erms_core::resources::Resources;
use erms_core::scaling::ServicePlan;
use erms_profilers::dataset::Sample;
use erms_sim::telemetry::SpanRecord;

use crate::json::Json;

/// A decode failure: what was wrong, with a rough path for diagnostics.
pub type DecodeError = String;

fn num(v: f64) -> Json {
    Json::Num(v)
}

fn uint(v: u64) -> Json {
    // u64 values here are round counters and container counts, all far
    // below 2^53, so the f64 carriage is exact.
    Json::Num(v as f64)
}

fn get_f64(j: &Json, key: &str, ctx: &str) -> Result<f64, DecodeError> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{ctx}: missing or non-numeric field `{key}`"))
}

fn get_u64(j: &Json, key: &str, ctx: &str) -> Result<u64, DecodeError> {
    let v = get_f64(j, key, ctx)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!(
            "{ctx}: field `{key}` must be a non-negative integer"
        ));
    }
    Ok(v as u64)
}

fn get_u32(j: &Json, key: &str, ctx: &str) -> Result<u32, DecodeError> {
    u32::try_from(get_u64(j, key, ctx)?).map_err(|_| format!("{ctx}: field `{key}` out of range"))
}

fn get_str<'a>(j: &'a Json, key: &str, ctx: &str) -> Result<&'a str, DecodeError> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: missing or non-string field `{key}`"))
}

fn get_arr<'a>(j: &'a Json, key: &str, ctx: &str) -> Result<&'a [Json], DecodeError> {
    j.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: missing or non-array field `{key}`"))
}

fn pair<'a>(j: &'a Json, ctx: &str) -> Result<(&'a Json, &'a Json), DecodeError> {
    match j.as_arr() {
        Some([a, b]) => Ok((a, b)),
        _ => Err(format!("{ctx}: expected a two-element pair")),
    }
}

fn id_from(j: &Json, ctx: &str) -> Result<u32, DecodeError> {
    let v = j
        .as_f64()
        .ok_or_else(|| format!("{ctx}: expected a numeric id"))?;
    if v < 0.0 || v.fract() != 0.0 || v > f64::from(u32::MAX) {
        return Err(format!("{ctx}: id must be a small non-negative integer"));
    }
    Ok(v as u32)
}

// ---------------------------------------------------------------- profiles

/// Encodes one linear segment.
pub fn segment_to_json(s: &Segment) -> Json {
    Json::obj(vec![
        ("alpha", num(s.alpha)),
        ("beta", num(s.beta)),
        ("c", num(s.c)),
        ("b", num(s.b)),
    ])
}

/// Decodes one linear segment.
pub fn segment_from_json(j: &Json) -> Result<Segment, DecodeError> {
    Ok(Segment::new(
        get_f64(j, "alpha", "segment")?,
        get_f64(j, "beta", "segment")?,
        get_f64(j, "c", "segment")?,
        get_f64(j, "b", "segment")?,
    ))
}

/// Encodes a cut-off model. The infinite constant cut-off (single-interval
/// profiles) becomes `{"kind":"constant","value":null}`.
pub fn cutoff_to_json(c: &CutoffModel) -> Json {
    match c {
        CutoffModel::Constant(v) => Json::obj(vec![
            ("kind", Json::str("constant")),
            ("value", if v.is_finite() { num(*v) } else { Json::Null }),
        ]),
        CutoffModel::Affine {
            base,
            k_cpu,
            k_mem,
            min,
        } => Json::obj(vec![
            ("kind", Json::str("affine")),
            ("base", num(*base)),
            ("k_cpu", num(*k_cpu)),
            ("k_mem", num(*k_mem)),
            ("min", num(*min)),
        ]),
        CutoffModel::Tree(tree) => {
            let nodes = tree
                .nodes
                .iter()
                .map(|n| match n {
                    CutoffNode::Leaf(v) => Json::obj(vec![("leaf", num(*v))]),
                    CutoffNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => Json::obj(vec![
                        ("feature", uint(u64::from(*feature))),
                        ("threshold", num(*threshold)),
                        ("left", uint(u64::from(*left))),
                        ("right", uint(u64::from(*right))),
                    ]),
                })
                .collect();
            Json::obj(vec![
                ("kind", Json::str("tree")),
                ("nodes", Json::Arr(nodes)),
            ])
        }
    }
}

/// Decodes a cut-off model.
pub fn cutoff_from_json(j: &Json) -> Result<CutoffModel, DecodeError> {
    match get_str(j, "kind", "cutoff")? {
        "constant" => {
            let value = j
                .get("value")
                .ok_or_else(|| "cutoff: missing field `value`".to_string())?;
            if value.is_null() {
                Ok(CutoffModel::Constant(f64::INFINITY))
            } else {
                value
                    .as_f64()
                    .map(CutoffModel::Constant)
                    .ok_or_else(|| "cutoff: `value` must be a number or null".into())
            }
        }
        "affine" => Ok(CutoffModel::Affine {
            base: get_f64(j, "base", "cutoff")?,
            k_cpu: get_f64(j, "k_cpu", "cutoff")?,
            k_mem: get_f64(j, "k_mem", "cutoff")?,
            min: get_f64(j, "min", "cutoff")?,
        }),
        "tree" => {
            let nodes = get_arr(j, "nodes", "cutoff")?
                .iter()
                .map(|n| {
                    if let Some(v) = n.get("leaf").and_then(Json::as_f64) {
                        Ok(CutoffNode::Leaf(v))
                    } else {
                        Ok(CutoffNode::Split {
                            feature: u8::try_from(get_u64(n, "feature", "cutoff node")?)
                                .map_err(|_| "cutoff node: `feature` out of range".to_string())?,
                            threshold: get_f64(n, "threshold", "cutoff node")?,
                            left: get_u32(n, "left", "cutoff node")?,
                            right: get_u32(n, "right", "cutoff node")?,
                        })
                    }
                })
                .collect::<Result<Vec<_>, DecodeError>>()?;
            Ok(CutoffModel::Tree(CutoffTree { nodes }))
        }
        other => Err(format!("cutoff: unknown kind `{other}`")),
    }
}

/// Encodes a latency profile.
pub fn profile_to_json(p: &LatencyProfile) -> Json {
    Json::obj(vec![
        ("low", segment_to_json(&p.low)),
        ("high", segment_to_json(&p.high)),
        ("cutoff", cutoff_to_json(&p.cutoff)),
    ])
}

/// Decodes a latency profile.
pub fn profile_from_json(j: &Json) -> Result<LatencyProfile, DecodeError> {
    let low = segment_from_json(
        j.get("low")
            .ok_or_else(|| "profile: missing field `low`".to_string())?,
    )?;
    let high = segment_from_json(
        j.get("high")
            .ok_or_else(|| "profile: missing field `high`".to_string())?,
    )?;
    let cutoff = cutoff_from_json(
        j.get("cutoff")
            .ok_or_else(|| "profile: missing field `cutoff`".to_string())?,
    )?;
    Ok(LatencyProfile::new(low, high, cutoff))
}

/// Encodes an interference point.
pub fn interference_to_json(itf: Interference) -> Json {
    Json::obj(vec![("cpu", num(itf.cpu)), ("memory", num(itf.memory))])
}

/// Decodes an interference point (clamped to `[0, 1]` by the constructor).
pub fn interference_from_json(j: &Json) -> Result<Interference, DecodeError> {
    Ok(Interference::new(
        get_f64(j, "cpu", "interference")?,
        get_f64(j, "memory", "interference")?,
    ))
}

// ---------------------------------------------------------------- app

fn graph_to_json(g: &DependencyGraph) -> Json {
    let nodes = g
        .iter()
        .map(|(_, n)| {
            let stages = n
                .stages
                .iter()
                .map(|stage| Json::Arr(stage.iter().map(|id| uint(id.index() as u64)).collect()))
                .collect();
            Json::obj(vec![
                ("microservice", uint(n.microservice.index() as u64)),
                ("multiplicity", num(n.multiplicity)),
                ("stages", Json::Arr(stages)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("root", uint(g.root().index() as u64)),
        ("nodes", Json::Arr(nodes)),
    ])
}

fn graph_from_json(j: &Json) -> Result<DependencyGraph, DecodeError> {
    let root = NodeId::new(get_u32(j, "root", "graph")?);
    let nodes = get_arr(j, "nodes", "graph")?
        .iter()
        .map(|n| {
            let stages = get_arr(n, "stages", "graph node")?
                .iter()
                .map(|stage| {
                    stage
                        .as_arr()
                        .ok_or_else(|| "graph node: stage must be an array".to_string())?
                        .iter()
                        .map(|id| Ok(NodeId::new(id_from(id, "graph node child")?)))
                        .collect::<Result<Vec<_>, DecodeError>>()
                })
                .collect::<Result<Vec<_>, DecodeError>>()?;
            Ok(Node {
                microservice: MicroserviceId::new(get_u32(n, "microservice", "graph node")?),
                multiplicity: get_f64(n, "multiplicity", "graph node")?,
                stages,
            })
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;
    DependencyGraph::from_parts(nodes, root).map_err(|e| format!("graph: {e}"))
}

/// Encodes a full application model (microservices with profiles, services
/// with SLAs and dependency graphs).
pub fn app_to_json(app: &App) -> Json {
    let microservices = app
        .microservices()
        .map(|(_, m): (_, &Microservice)| {
            Json::obj(vec![
                ("name", Json::str(&m.name)),
                ("profile", profile_to_json(&m.profile)),
                (
                    "resources",
                    Json::obj(vec![
                        ("cpu", num(m.resources.cpu)),
                        ("memory_mb", num(m.resources.memory_mb)),
                    ]),
                ),
            ])
        })
        .collect();
    let services = app
        .services()
        .map(|(_, s): (_, &Service)| {
            Json::obj(vec![
                ("name", Json::str(&s.name)),
                (
                    "sla",
                    Json::obj(vec![
                        ("percentile", num(s.sla.percentile)),
                        ("threshold_ms", num(s.sla.threshold_ms)),
                    ]),
                ),
                ("graph", graph_to_json(&s.graph)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("name", Json::str(app.name())),
        ("microservices", Json::Arr(microservices)),
        ("services", Json::Arr(services)),
    ])
}

/// Decodes an application model. Microservice and service ids are assigned
/// densely in array order, so an encode→decode round trip preserves every
/// id (and therefore every plan and snapshot that references them).
pub fn app_from_json(j: &Json) -> Result<App, DecodeError> {
    let name = get_str(j, "name", "app")?;
    let mut b = AppBuilder::new(name);
    for (i, m) in get_arr(j, "microservices", "app")?.iter().enumerate() {
        let ctx = format!("app microservice[{i}]");
        let ms_name = get_str(m, "name", &ctx)?;
        let profile = profile_from_json(
            m.get("profile")
                .ok_or_else(|| format!("{ctx}: missing field `profile`"))?,
        )?;
        let res = m
            .get("resources")
            .ok_or_else(|| format!("{ctx}: missing field `resources`"))?;
        let resources_cpu = get_f64(res, "cpu", &ctx)?;
        let resources_mem = get_f64(res, "memory_mb", &ctx)?;
        if !(resources_cpu.is_finite()
            && resources_cpu >= 0.0
            && resources_mem.is_finite()
            && resources_mem >= 0.0)
        {
            return Err(format!("{ctx}: resources must be finite and non-negative"));
        }
        b.microservice(
            ms_name,
            profile,
            Resources::new(resources_cpu, resources_mem),
        );
    }
    for (i, s) in get_arr(j, "services", "app")?.iter().enumerate() {
        let ctx = format!("app service[{i}]");
        let svc_name = get_str(s, "name", &ctx)?;
        let sla = s
            .get("sla")
            .ok_or_else(|| format!("{ctx}: missing field `sla`"))?;
        let sla = Sla {
            percentile: get_f64(sla, "percentile", &ctx)?,
            threshold_ms: get_f64(sla, "threshold_ms", &ctx)?,
        };
        let graph = graph_from_json(
            s.get("graph")
                .ok_or_else(|| format!("{ctx}: missing field `graph`"))?,
        )?;
        b.raw_service(svc_name, sla, graph);
    }
    b.build().map_err(|e| format!("app: {e}"))
}

// ---------------------------------------------------------------- workloads

/// Encodes per-service request rates as `[[service, per_minute], ...]`.
pub fn workloads_to_json(w: &WorkloadVector) -> Json {
    Json::Arr(
        w.iter()
            .map(|(svc, rate)| Json::Arr(vec![uint(svc.index() as u64), num(rate.as_per_minute())]))
            .collect(),
    )
}

/// Decodes per-service request rates.
pub fn workloads_from_json(j: &Json) -> Result<WorkloadVector, DecodeError> {
    let arr = j
        .as_arr()
        .ok_or_else(|| "workloads: expected an array of pairs".to_string())?;
    let mut entries = Vec::with_capacity(arr.len());
    for item in arr {
        let (svc, rate) = pair(item, "workloads")?;
        let rate = rate
            .as_f64()
            .ok_or_else(|| "workloads: rate must be a number".to_string())?;
        if rate < 0.0 {
            return Err("workloads: rate must be non-negative".into());
        }
        entries.push((
            ServiceId::new(id_from(svc, "workloads service")?),
            RequestRate::per_minute(rate),
        ));
    }
    Ok(entries.into_iter().collect())
}

// ---------------------------------------------------------------- plans

fn interval_to_json(i: Interval) -> Json {
    Json::str(match i {
        Interval::Low => "low",
        Interval::High => "high",
    })
}

fn interval_from_json(j: &Json) -> Result<Interval, DecodeError> {
    match j.as_str() {
        Some("low") => Ok(Interval::Low),
        Some("high") => Ok(Interval::High),
        _ => Err("interval: expected \"low\" or \"high\"".into()),
    }
}

fn ms_f64_map_to_json(map: &BTreeMap<MicroserviceId, f64>) -> Json {
    Json::Arr(
        map.iter()
            .map(|(&ms, &v)| Json::Arr(vec![uint(ms.index() as u64), num(v)]))
            .collect(),
    )
}

fn ms_f64_map_from_json(j: &Json, ctx: &str) -> Result<BTreeMap<MicroserviceId, f64>, DecodeError> {
    let mut out = BTreeMap::new();
    for item in j
        .as_arr()
        .ok_or_else(|| format!("{ctx}: expected an array of pairs"))?
    {
        let (ms, v) = pair(item, ctx)?;
        let v = v
            .as_f64()
            .ok_or_else(|| format!("{ctx}: value must be a number"))?;
        out.insert(MicroserviceId::new(id_from(ms, ctx)?), v);
    }
    Ok(out)
}

fn service_plan_to_json(p: &ServicePlan) -> Json {
    Json::obj(vec![
        ("service", uint(p.service.index() as u64)),
        (
            "node_targets_ms",
            Json::Arr(p.node_targets_ms.iter().map(|&v| num(v)).collect()),
        ),
        ("ms_targets_ms", ms_f64_map_to_json(&p.ms_targets_ms)),
        ("ms_containers", ms_f64_map_to_json(&p.ms_containers)),
        (
            "ms_intervals",
            Json::Arr(
                p.ms_intervals
                    .iter()
                    .map(|(&ms, &i)| Json::Arr(vec![uint(ms.index() as u64), interval_to_json(i)]))
                    .collect(),
            ),
        ),
    ])
}

fn service_plan_from_json(j: &Json) -> Result<ServicePlan, DecodeError> {
    let ctx = "service plan";
    let node_targets_ms = get_arr(j, "node_targets_ms", ctx)?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| format!("{ctx}: node target must be a number"))
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;
    let mut ms_intervals = BTreeMap::new();
    for item in get_arr(j, "ms_intervals", ctx)? {
        let (ms, i) = pair(item, ctx)?;
        ms_intervals.insert(
            MicroserviceId::new(id_from(ms, ctx)?),
            interval_from_json(i)?,
        );
    }
    Ok(ServicePlan {
        service: ServiceId::new(get_u32(j, "service", ctx)?),
        node_targets_ms,
        ms_targets_ms: ms_f64_map_from_json(
            j.get("ms_targets_ms")
                .ok_or_else(|| format!("{ctx}: missing `ms_targets_ms`"))?,
            ctx,
        )?,
        ms_containers: ms_f64_map_from_json(
            j.get("ms_containers")
                .ok_or_else(|| format!("{ctx}: missing `ms_containers`"))?,
            ctx,
        )?,
        ms_intervals,
    })
}

/// Encodes a scaling plan: container counts, priority orders and the
/// per-service latency-target plans that backed the decision.
pub fn plan_to_json(plan: &ScalingPlan) -> Json {
    let containers = plan
        .iter()
        .map(|(ms, c)| Json::Arr(vec![uint(ms.index() as u64), uint(u64::from(c))]))
        .collect();
    let priorities = plan
        .microservices()
        .filter_map(|ms| {
            plan.priority_order(ms).map(|order| {
                Json::Arr(vec![
                    uint(ms.index() as u64),
                    Json::Arr(order.iter().map(|s| uint(s.index() as u64)).collect()),
                ])
            })
        })
        .collect();
    let service_plans = plan.service_plans().map(service_plan_to_json).collect();
    Json::obj(vec![
        ("scheme", Json::str(&plan.scheme)),
        ("containers", Json::Arr(containers)),
        ("priorities", Json::Arr(priorities)),
        ("service_plans", Json::Arr(service_plans)),
    ])
}

/// Decodes a scaling plan.
pub fn plan_from_json(j: &Json) -> Result<ScalingPlan, DecodeError> {
    let mut plan = ScalingPlan::new(get_str(j, "scheme", "plan")?);
    for item in get_arr(j, "containers", "plan")? {
        let (ms, c) = pair(item, "plan containers")?;
        let count = c
            .as_f64()
            .filter(|v| *v >= 0.0 && v.fract() == 0.0 && *v <= f64::from(u32::MAX))
            .ok_or_else(|| "plan containers: count must be a non-negative integer".to_string())?;
        plan.set_containers(
            MicroserviceId::new(id_from(ms, "plan containers")?),
            count as u32,
        );
    }
    for item in get_arr(j, "priorities", "plan")? {
        let (ms, order) = pair(item, "plan priorities")?;
        let order = order
            .as_arr()
            .ok_or_else(|| "plan priorities: order must be an array".to_string())?
            .iter()
            .map(|s| Ok(ServiceId::new(id_from(s, "plan priorities")?)))
            .collect::<Result<Vec<_>, DecodeError>>()?;
        plan.set_priority_order(MicroserviceId::new(id_from(ms, "plan priorities")?), order);
    }
    for item in get_arr(j, "service_plans", "plan")? {
        plan.set_service_plan(service_plan_from_json(item)?);
    }
    Ok(plan)
}

// ---------------------------------------------------------------- manager

/// Encodes the resilient manager's exported hysteresis state.
pub fn manager_state_to_json(state: &ManagerState) -> Json {
    let last_applied = state.last_applied.as_ref().map_or(Json::Null, plan_to_json);
    let last_good = state
        .last_good
        .as_ref()
        .map_or(Json::Null, |(plan, round)| {
            Json::obj(vec![("plan", plan_to_json(plan)), ("round", uint(*round))])
        });
    let directions = state
        .directions
        .iter()
        .map(|(&ms, &(dir, round))| {
            Json::Arr(vec![
                uint(ms.index() as u64),
                num(f64::from(dir)),
                uint(round),
            ])
        })
        .collect();
    Json::obj(vec![
        ("round", uint(state.round)),
        ("last_applied", last_applied),
        ("last_good", last_good),
        ("directions", Json::Arr(directions)),
    ])
}

/// Decodes the resilient manager's hysteresis state.
pub fn manager_state_from_json(j: &Json) -> Result<ManagerState, DecodeError> {
    let last_applied = match j.get("last_applied") {
        Some(Json::Null) | None => None,
        Some(p) => Some(plan_from_json(p)?),
    };
    let last_good = match j.get("last_good") {
        Some(Json::Null) | None => None,
        Some(entry) => Some((
            plan_from_json(
                entry
                    .get("plan")
                    .ok_or_else(|| "manager state: `last_good` missing `plan`".to_string())?,
            )?,
            get_u64(entry, "round", "manager state last_good")?,
        )),
    };
    let mut directions = BTreeMap::new();
    for item in get_arr(j, "directions", "manager state")? {
        let triple = item
            .as_arr()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| "manager state: direction must be [ms, dir, round]".to_string())?;
        let ms = MicroserviceId::new(id_from(&triple[0], "manager state direction")?);
        let dir = triple[1]
            .as_f64()
            .filter(|v| *v == 1.0 || *v == -1.0)
            .ok_or_else(|| "manager state: direction must be ±1".to_string())?
            as i8;
        let round = triple[2]
            .as_f64()
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .ok_or_else(|| "manager state: direction round must be an integer".to_string())?
            as u64;
        directions.insert(ms, (dir, round));
    }
    Ok(ManagerState {
        round: get_u64(j, "round", "manager state")?,
        last_applied,
        last_good,
        directions,
    })
}

// ---------------------------------------------------------------- cluster

fn ms_pairs_to_json<I: Iterator<Item = (MicroserviceId, u32)>>(iter: I) -> Json {
    Json::Arr(
        iter.map(|(ms, c)| Json::Arr(vec![uint(ms.index() as u64), uint(u64::from(c))]))
            .collect(),
    )
}

fn ms_pairs_from_json(j: &Json, ctx: &str) -> Result<Vec<(MicroserviceId, u32)>, DecodeError> {
    j.as_arr()
        .ok_or_else(|| format!("{ctx}: expected an array of pairs"))?
        .iter()
        .map(|item| {
            let (ms, c) = pair(item, ctx)?;
            let count = c
                .as_f64()
                .filter(|v| *v >= 0.0 && v.fract() == 0.0 && *v <= f64::from(u32::MAX))
                .ok_or_else(|| format!("{ctx}: count must be a non-negative integer"))?;
            Ok((MicroserviceId::new(id_from(ms, ctx)?), count as u32))
        })
        .collect()
}

fn resize_pairs_to_json<I: Iterator<Item = (MicroserviceId, f64)>>(iter: I) -> Json {
    Json::Arr(
        iter.map(|(ms, f)| Json::Arr(vec![uint(ms.index() as u64), num(f)]))
            .collect(),
    )
}

fn resize_pairs_from_json(j: &Json, ctx: &str) -> Result<Vec<(MicroserviceId, f64)>, DecodeError> {
    j.as_arr()
        .ok_or_else(|| format!("{ctx}: expected an array of pairs"))?
        .iter()
        .map(|item| {
            let (ms, f) = pair(item, ctx)?;
            let factor = f
                .as_f64()
                .ok_or_else(|| format!("{ctx}: factor must be a number"))?;
            Ok((MicroserviceId::new(id_from(ms, ctx)?), factor))
        })
        .collect()
}

/// Encodes one host, including its placements and vertical-scaling bits.
pub fn host_to_json(h: &Host) -> Json {
    Json::obj(vec![
        ("cpu_capacity", num(h.cpu_capacity)),
        ("mem_capacity", num(h.mem_capacity)),
        ("background_cpu", num(h.background_cpu)),
        ("background_mem", num(h.background_mem)),
        (
            "lifecycle",
            Json::str(match h.lifecycle {
                HostLifecycle::OnDemand => "on_demand",
                HostLifecycle::Spot => "spot",
            }),
        ),
        (
            "domain",
            Json::obj(vec![
                ("zone", uint(u64::from(h.domain.zone))),
                ("rack", uint(u64::from(h.domain.rack))),
            ]),
        ),
        ("interference_scale", num(h.interference_scale)),
        (
            "reclaim_at_round",
            h.reclaim_at_round.map_or(Json::Null, uint),
        ),
        ("placements", ms_pairs_to_json(h.placements())),
        ("resize_factors", resize_pairs_to_json(h.resize_factors())),
    ])
}

/// Decodes one host.
pub fn host_from_json(j: &Json) -> Result<Host, DecodeError> {
    let ctx = "host";
    let mut host = Host::new(
        get_f64(j, "cpu_capacity", ctx)?,
        get_f64(j, "mem_capacity", ctx)?,
    );
    host.background_cpu = get_f64(j, "background_cpu", ctx)?;
    host.background_mem = get_f64(j, "background_mem", ctx)?;
    host.lifecycle = match get_str(j, "lifecycle", ctx)? {
        "on_demand" => HostLifecycle::OnDemand,
        "spot" => HostLifecycle::Spot,
        other => return Err(format!("{ctx}: unknown lifecycle `{other}`")),
    };
    let domain = j
        .get("domain")
        .ok_or_else(|| format!("{ctx}: missing field `domain`"))?;
    host.domain = FailureDomain::new(get_u32(domain, "zone", ctx)?, get_u32(domain, "rack", ctx)?);
    host.interference_scale = get_f64(j, "interference_scale", ctx)?;
    host.reclaim_at_round = match j.get("reclaim_at_round") {
        Some(Json::Null) | None => None,
        Some(v) => Some(
            v.as_f64()
                .filter(|x| *x >= 0.0 && x.fract() == 0.0)
                .ok_or_else(|| format!("{ctx}: `reclaim_at_round` must be an integer or null"))?
                as u64,
        ),
    };
    let placements = ms_pairs_from_json(
        j.get("placements")
            .ok_or_else(|| format!("{ctx}: missing field `placements`"))?,
        "host placements",
    )?;
    let resize = resize_pairs_from_json(
        j.get("resize_factors")
            .ok_or_else(|| format!("{ctx}: missing field `resize_factors`"))?,
        "host resize factors",
    )?;
    host.restore_placements(placements, resize);
    Ok(host)
}

/// Encodes the full cluster state: every host with its placements and
/// vertical-scaling factors, plus the cluster-level resize map.
pub fn cluster_to_json(state: &ClusterState) -> Json {
    Json::obj(vec![
        (
            "hosts",
            Json::Arr(state.hosts().iter().map(host_to_json).collect()),
        ),
        (
            "resize_factors",
            resize_pairs_to_json(state.resize_factors()),
        ),
    ])
}

/// Decodes cluster state. `decode ∘ encode` is the identity on every field
/// that feeds planning (capacities, placements, resize bits), which the
/// snapshot equivalence test relies on.
pub fn cluster_from_json(j: &Json) -> Result<ClusterState, DecodeError> {
    let hosts = get_arr(j, "hosts", "cluster")?
        .iter()
        .map(host_from_json)
        .collect::<Result<Vec<_>, DecodeError>>()?;
    let mut state = ClusterState::new(hosts);
    let resize = resize_pairs_from_json(
        j.get("resize_factors")
            .ok_or_else(|| "cluster: missing field `resize_factors`".to_string())?,
        "cluster resize factors",
    )?;
    state.restore_resize_factors(resize);
    Ok(state)
}

// ---------------------------------------------------------------- telemetry

/// Encodes the profiler's retained observation window.
pub fn samples_to_json(samples: &BTreeMap<MicroserviceId, Vec<Sample>>) -> Json {
    Json::Arr(
        samples
            .iter()
            .map(|(&ms, bucket)| {
                Json::Arr(vec![
                    uint(ms.index() as u64),
                    Json::Arr(
                        bucket
                            .iter()
                            .map(|s| {
                                Json::Arr(vec![
                                    num(s.latency_ms),
                                    num(s.gamma),
                                    num(s.cpu),
                                    num(s.mem),
                                ])
                            })
                            .collect(),
                    ),
                ])
            })
            .collect(),
    )
}

/// Decodes the profiler's retained observation window.
pub fn samples_from_json(j: &Json) -> Result<BTreeMap<MicroserviceId, Vec<Sample>>, DecodeError> {
    let mut out = BTreeMap::new();
    for item in j
        .as_arr()
        .ok_or_else(|| "samples: expected an array".to_string())?
    {
        let (ms, bucket) = pair(item, "samples")?;
        let bucket = bucket
            .as_arr()
            .ok_or_else(|| "samples: bucket must be an array".to_string())?
            .iter()
            .map(|s| {
                let quad = s
                    .as_arr()
                    .filter(|a| a.len() == 4)
                    .ok_or_else(|| "samples: expected [latency, gamma, cpu, mem]".to_string())?;
                let field = |i: usize| {
                    quad[i]
                        .as_f64()
                        .ok_or_else(|| "samples: fields must be numbers".to_string())
                };
                Ok(Sample::new(field(0)?, field(1)?, field(2)?, field(3)?))
            })
            .collect::<Result<Vec<_>, DecodeError>>()?;
        out.insert(MicroserviceId::new(id_from(ms, "samples")?), bucket);
    }
    Ok(out)
}

/// Decodes one span-ingestion payload: the sampling rate the spans were
/// collected at, the deployment they ran under, and the spans themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanBatch {
    /// Sampling rate in `(0, 1]` the spans were collected at.
    pub sampling: f64,
    /// Deployment (containers per microservice) at observation time.
    /// Empty means "use the tenant's last applied plan".
    pub containers: BTreeMap<MicroserviceId, u32>,
    /// The observed spans.
    pub spans: Vec<SpanRecord>,
}

/// Encodes a span batch (used by the loopback DES driver and the tests).
pub fn span_batch_to_json(batch: &SpanBatch) -> Json {
    let spans = batch
        .spans
        .iter()
        .map(|s| {
            Json::Arr(vec![
                uint(s.service.index() as u64),
                uint(s.microservice.index() as u64),
                uint(u64::from(s.container)),
                uint(u64::from(s.priority_class)),
                num(s.start_ms),
                num(s.end_ms),
            ])
        })
        .collect();
    Json::obj(vec![
        ("sampling", num(batch.sampling)),
        (
            "containers",
            ms_pairs_to_json(batch.containers.iter().map(|(&m, &c)| (m, c))),
        ),
        ("spans", Json::Arr(spans)),
    ])
}

/// Decodes a span batch.
pub fn span_batch_from_json(j: &Json) -> Result<SpanBatch, DecodeError> {
    let sampling = get_f64(j, "sampling", "span batch")?;
    if !(sampling > 0.0 && sampling <= 1.0) {
        return Err("span batch: `sampling` must be in (0, 1]".into());
    }
    let containers = match j.get("containers") {
        Some(c) => ms_pairs_from_json(c, "span batch containers")?
            .into_iter()
            .collect(),
        None => BTreeMap::new(),
    };
    let spans = get_arr(j, "spans", "span batch")?
        .iter()
        .map(|s| {
            let six = s.as_arr().filter(|a| a.len() == 6).ok_or_else(|| {
                "span batch: span must be [service, ms, container, class, start, end]".to_string()
            })?;
            let f = |i: usize| {
                six[i]
                    .as_f64()
                    .ok_or_else(|| "span batch: span fields must be numbers".to_string())
            };
            Ok(SpanRecord {
                service: ServiceId::new(id_from(&six[0], "span service")?),
                microservice: MicroserviceId::new(id_from(&six[1], "span microservice")?),
                container: f(2)? as u32,
                priority_class: f(3)? as u32,
                start_ms: f(4)?,
                end_ms: f(5)?,
            })
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;
    Ok(SpanBatch {
        sampling,
        containers,
        spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use erms_core::app::AppBuilder;

    fn fixture_app() -> App {
        let mut b = AppBuilder::new("social");
        let front = b.microservice(
            "frontend",
            LatencyProfile::kneed(0.002, 3.0, 0.02, 9000.0),
            Resources::new(0.1, 200.0),
        );
        let logic = b.microservice(
            "logic",
            LatencyProfile::new(
                Segment::new(1.0, 0.5, 0.001, 2.0),
                Segment::new(4.0, 2.0, 0.01, -5.0),
                CutoffModel::Affine {
                    base: 12000.0,
                    k_cpu: 3000.0,
                    k_mem: 1000.0,
                    min: 4000.0,
                },
            ),
            Resources::new(0.2, 300.0),
        );
        let store = b.microservice(
            "store",
            LatencyProfile::linear(0.004, 6.0),
            Resources::new(0.1, 200.0),
        );
        b.service("compose", Sla::p95_ms(200.0), |g| {
            let root = g.entry(front);
            let mid = g.call_seq(root, logic);
            g.call_seq_n(mid, store, 2.5);
        });
        b.service("read", Sla::p95_ms(120.0), |g| {
            let root = g.entry(front);
            g.call_par(root, &[logic, store]);
        });
        b.build().unwrap()
    }

    #[test]
    fn app_round_trips_bit_identically() {
        let app = fixture_app();
        let encoded = app_to_json(&app).render();
        let decoded = app_from_json(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.name(), app.name());
        assert_eq!(decoded.microservice_count(), app.microservice_count());
        for (ms, m) in app.microservices() {
            let d = decoded.microservice(ms).unwrap();
            assert_eq!(d.name, m.name);
            assert_eq!(d.profile, m.profile);
            assert_eq!(d.resources.cpu.to_bits(), m.resources.cpu.to_bits());
        }
        for (svc, s) in app.services() {
            let d = decoded.service(svc).unwrap();
            assert_eq!(d.sla.threshold_ms.to_bits(), s.sla.threshold_ms.to_bits());
            assert_eq!(d.graph.content_hash(), s.graph.content_hash());
        }
    }

    #[test]
    fn infinite_cutoff_survives_the_trip() {
        let profile = LatencyProfile::linear(0.01, 1.0);
        assert!(profile.cutoff.eval(Interference::default()).is_infinite());
        let text = profile_to_json(&profile).render();
        assert!(text.contains("\"value\":null"), "{text}");
        let back = profile_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn plan_round_trips_with_priorities_and_service_plans() {
        let ms0 = MicroserviceId::new(0);
        let ms1 = MicroserviceId::new(1);
        let s0 = ServiceId::new(0);
        let s1 = ServiceId::new(1);
        let mut plan = ScalingPlan::new("erms");
        plan.set_containers(ms0, 7);
        plan.set_containers(ms1, 0);
        plan.set_priority_order(ms0, vec![s1, s0]);
        plan.set_service_plan(ServicePlan {
            service: s0,
            node_targets_ms: vec![100.0, 55.5],
            ms_targets_ms: [(ms0, 55.5)].into_iter().collect(),
            ms_containers: [(ms0, 6.25)].into_iter().collect(),
            ms_intervals: [(ms0, Interval::High)].into_iter().collect(),
        });
        let text = plan_to_json(&plan).render();
        let back = plan_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.get(ms1), Some(0), "explicit zero must survive");
    }

    #[test]
    fn manager_state_round_trips() {
        let mut plan = ScalingPlan::new("erms");
        plan.set_containers(MicroserviceId::new(0), 3);
        let state = ManagerState {
            round: 17,
            last_applied: Some(plan.clone()),
            last_good: Some((plan, 15)),
            directions: [(MicroserviceId::new(0), (-1i8, 16u64))]
                .into_iter()
                .collect(),
        };
        let text = manager_state_to_json(&state).render();
        let back = manager_state_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn cluster_round_trips_including_resize_bits() {
        let mut state = ClusterState::new(vec![
            Host::paper_host(),
            Host::new(16.0, 32768.0)
                .with_lifecycle(HostLifecycle::Spot)
                .with_domain(FailureDomain::new(1, 2)),
        ]);
        state.hosts_mut()[0].restore_placements(
            vec![(MicroserviceId::new(0), 4), (MicroserviceId::new(2), 1)],
            vec![(MicroserviceId::new(0), 0.85)],
        );
        state.hosts_mut()[1].reclaim_at_round = Some(9);
        state.hosts_mut()[1].background_cpu = 3.5;
        state.restore_resize_factors(vec![(MicroserviceId::new(0), 0.85)]);
        let text = cluster_to_json(&state).render();
        let back = cluster_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, state);
        // The resize factor must survive with exact bits: it feeds
        // resource arithmetic inside provisioning.
        let factor = back.resize_factor(MicroserviceId::new(0));
        assert_eq!(factor.to_bits(), 0.85f64.to_bits());
    }

    #[test]
    fn workloads_and_samples_round_trip() {
        let w: WorkloadVector = [
            (ServiceId::new(0), RequestRate::per_minute(30000.0)),
            (ServiceId::new(1), RequestRate::per_minute(123.456)),
        ]
        .into_iter()
        .collect();
        let text = workloads_to_json(&w).render();
        let back = workloads_from_json(&Json::parse(&text).unwrap()).unwrap();
        for (svc, rate) in w.iter() {
            assert_eq!(
                back.rate(svc).as_per_minute().to_bits(),
                rate.as_per_minute().to_bits()
            );
        }

        let samples: BTreeMap<MicroserviceId, Vec<Sample>> = [(
            MicroserviceId::new(3),
            vec![Sample::new(12.5, 4000.0, 0.31, 0.27)],
        )]
        .into_iter()
        .collect();
        let text = samples_to_json(&samples).render();
        let back = samples_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, samples);
    }

    #[test]
    fn span_batch_round_trips() {
        let batch = SpanBatch {
            sampling: 0.25,
            containers: [(MicroserviceId::new(0), 5)].into_iter().collect(),
            spans: vec![SpanRecord {
                service: ServiceId::new(1),
                microservice: MicroserviceId::new(0),
                container: 2,
                priority_class: 1,
                start_ms: 1000.25,
                end_ms: 1013.75,
            }],
        };
        let text = span_batch_to_json(&batch).render();
        let back = span_batch_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.sampling, batch.sampling);
        assert_eq!(back.containers, batch.containers);
        assert_eq!(back.spans, batch.spans);
    }

    #[test]
    fn malformed_payloads_are_rejected_with_context() {
        let err = app_from_json(&Json::parse("{\"name\":\"x\"}").unwrap()).unwrap_err();
        assert!(err.contains("microservices"), "{err}");
        let err = workloads_from_json(&Json::parse("[[0,-5.0]]").unwrap()).unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
        let err = span_batch_from_json(
            &Json::parse("{\"sampling\":0.0,\"containers\":[],\"spans\":[]}").unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("sampling"), "{err}");
    }
}
