//! Static workload levels and SLA settings of the paper's evaluation
//! (§6.1): per-service request rates from 600 (low) to 100 000 (high)
//! requests per minute, and P95 SLA targets from 50 ms (low) to 200 ms
//! (high).

use erms_core::app::RequestRate;

/// The static workload sweep of §6.3.1, in requests per minute.
pub fn workload_levels() -> Vec<RequestRate> {
    [
        600.0, 2_000.0, 6_000.0, 12_000.0, 25_000.0, 40_000.0, 60_000.0, 100_000.0,
    ]
    .into_iter()
    .map(RequestRate::per_minute)
    .collect()
}

/// The SLA sweep of §6.1, in milliseconds (P95 end-to-end latency).
pub fn sla_levels() -> Vec<f64> {
    vec![50.0, 100.0, 150.0, 200.0]
}

/// Classification of a workload level relative to the sweep (used to
/// bucket results the way the paper labels "low"/"high" workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBand {
    /// ≤ 6 000 req/min.
    Low,
    /// 6 000–40 000 req/min.
    Medium,
    /// > 40 000 req/min.
    High,
}

/// Buckets a rate into a [`LoadBand`].
pub fn band(rate: RequestRate) -> LoadBand {
    let per_min = rate.as_per_minute();
    if per_min <= 6_000.0 {
        LoadBand::Low
    } else if per_min <= 40_000.0 {
        LoadBand::Medium
    } else {
        LoadBand::High
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_paper_range() {
        let levels = workload_levels();
        assert_eq!(levels.first().unwrap().as_per_minute(), 600.0);
        assert_eq!(levels.last().unwrap().as_per_minute(), 100_000.0);
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sla_levels_match_paper() {
        assert_eq!(sla_levels(), vec![50.0, 100.0, 150.0, 200.0]);
    }

    #[test]
    fn banding() {
        assert_eq!(band(RequestRate::per_minute(600.0)), LoadBand::Low);
        assert_eq!(band(RequestRate::per_minute(20_000.0)), LoadBand::Medium);
        assert_eq!(band(RequestRate::per_minute(100_000.0)), LoadBand::High);
    }
}
