//! DeathStarBench-like benchmark applications (§6.1).
//!
//! The paper evaluates on three applications from DeathStarBench [18]:
//!
//! | Application       | unique microservices | services | shared |
//! |-------------------|---------------------:|---------:|-------:|
//! | Social Network    | 36                   | 3        | 3      |
//! | Media Service     | 38                   | 1        | —      |
//! | Hotel Reservation | 15                   | 4        | 3      |
//!
//! The topologies here follow the published architecture diagrams: an
//! nginx front end, logic tiers fanning out in parallel to storage tiers
//! (memcached + mongodb pairs), with the storage-heavy microservices
//! (postStorage, userTimeline, …) markedly more workload-sensitive than
//! the stateless logic tiers. Latency-profile parameters are fixed,
//! hand-picked values in the Fig. 3 ranges, so experiments are
//! deterministic.

use erms_core::app::{App, AppBuilder, Sla};
use erms_core::ids::{MicroserviceId, ServiceId};
use erms_core::latency::LatencyProfile;
use erms_core::resources::Resources;

/// A built benchmark application plus name-based handles.
#[derive(Debug, Clone)]
pub struct BenchmarkApp {
    /// The application.
    pub app: App,
    /// Microservices designed to be shared between services.
    pub shared: Vec<MicroserviceId>,
    /// All service ids, in declaration order.
    pub services: Vec<ServiceId>,
}

/// Profile helper: a kneed, interference-sensitive profile.
///
/// `sensitivity` scales the slope (storage tiers ≫ logic tiers); `knee` is
/// the per-container calls/min where queueing kicks in.
fn profile(sensitivity: f64, knee: f64, intercept_ms: f64) -> LatencyProfile {
    let slope_low = 0.0015 * sensitivity;
    let slope_high = slope_low * 5.0;
    let mut p = LatencyProfile::kneed(slope_low, intercept_ms, slope_high, knee);
    // Interference steepens both segments and the knee moves forward.
    p.low.alpha = slope_low * 0.8;
    p.low.beta = slope_low * 0.5;
    p.high.alpha = slope_high * 0.8;
    p.high.beta = slope_high * 0.5;
    p.cutoff = erms_core::latency::CutoffModel::Affine {
        base: knee,
        k_cpu: knee * 0.3,
        k_mem: knee * 0.2,
        min: knee * 0.4,
    };
    p
}

/// The Social Network application: 36 unique microservices, 3 services
/// (compose-post, read-home-timeline, read-user-timeline), 3 shared
/// microservices (postStorage, socialGraph, userService).
pub fn social_network(sla_ms: f64) -> BenchmarkApp {
    let mut b = AppBuilder::new("social-network");
    let r = Resources::default;

    // Front/logic tier (fast, low sensitivity).
    let nginx = b.microservice("nginx", profile(0.5, 1500.0, 0.8), r());
    let compose = b.microservice("composePost", profile(1.0, 1200.0, 1.5), r());
    let unique_id = b.microservice("uniqueId", profile(0.3, 2000.0, 0.4), r());
    let url_shorten = b.microservice("urlShorten", profile(0.6, 1500.0, 0.8), r());
    let user_mention = b.microservice("userMention", profile(0.7, 1500.0, 0.9), r());
    let text = b.microservice("textService", profile(0.8, 1400.0, 1.0), r());
    let media = b.microservice("mediaService", profile(1.2, 1000.0, 1.6), r());
    // Shared tier (storage-backed, high sensitivity).
    let user_service = b.microservice("userService", profile(2.5, 650.0, 1.4), r());
    let social_graph = b.microservice("socialGraph", profile(3.0, 600.0, 1.6), r());
    let post_storage = b.microservice("postStorage", profile(3.5, 500.0, 1.8), r());
    // Timeline tier.
    let home_timeline = b.microservice("homeTimeline", profile(1.8, 800.0, 1.2), r());
    let user_timeline = b.microservice("userTimeline", profile(4.0, 450.0, 1.6), r());
    let write_home = b.microservice("writeHomeTimeline", profile(1.4, 900.0, 1.4), r());

    // Storage backends (memcached fast / mongodb slow) and sidecars to
    // reach 36 unique microservices.
    let mut backends = Vec::new();
    for (i, owner) in [
        "user",
        "socialGraph",
        "post",
        "homeTimeline",
        "userTimeline",
        "media",
        "url",
        "userMention",
    ]
    .iter()
    .enumerate()
    {
        let mc = b.microservice(
            format!("{owner}Memcached"),
            profile(0.4 + 0.05 * i as f64, 1800.0, 0.3),
            r(),
        );
        let mongo = b.microservice(
            format!("{owner}MongoDB"),
            profile(0.6 + 0.05 * i as f64, 1600.0, 6.0),
            r(),
        );
        backends.push((mc, mongo));
    }
    // Auxiliary microservices to match the benchmark's 36 unique count.
    for name in [
        "jaegerAgent",
        "textFilter",
        "mediaFilter",
        "uniqueIdCounter",
        "rateLimiter",
        "antispam",
        "notifier",
    ] {
        b.microservice(name, profile(0.4, 1600.0, 0.4), r());
    }

    let (user_mc, user_db) = backends[0];
    let (graph_mc, graph_db) = backends[1];
    let (post_mc, post_db) = backends[2];
    let (home_mc, _) = backends[3];
    let (utl_mc, utl_db) = backends[4];
    let (media_mc, _) = backends[5];
    let (url_mc, _) = backends[6];
    let (mention_mc, _) = backends[7];

    // Service 1: compose-post — the heavy write path.
    let compose_svc = b.service("compose-post", Sla::p95_ms(sla_ms), |g| {
        let root = g.entry(nginx);
        let cp = g.call_seq(root, compose);
        // Parallel pre-processing fan-out.
        let pre = g.call_par(cp, &[unique_id, url_shorten, user_mention, text, media]);
        g.call_seq(pre[1], url_mc);
        g.call_seq(pre[2], mention_mc);
        g.call_seq(pre[4], media_mc);
        // Then user lookup + storage writes.
        let user = g.call_seq(cp, user_service);
        g.call_par(user, &[user_mc, user_db]);
        let post = g.call_seq(cp, post_storage);
        g.call_par(post, &[post_mc, post_db]);
        let wht = g.call_seq(cp, write_home);
        let sg = g.call_seq(wht, social_graph);
        g.call_par(sg, &[graph_mc, graph_db]);
        g.call_seq(wht, home_mc);
    });

    // Service 2: read-home-timeline.
    let read_home_svc = b.service("read-home-timeline", Sla::p95_ms(sla_ms), |g| {
        let root = g.entry(nginx);
        let ht = g.call_seq(root, home_timeline);
        g.call_seq(ht, home_mc);
        let post = g.call_seq(ht, post_storage);
        g.call_par(post, &[post_mc, post_db]);
        let sg = g.call_seq(ht, social_graph);
        g.call_seq(sg, graph_mc);
        g.call_seq(ht, user_service);
    });

    // Service 3: read-user-timeline.
    let read_user_svc = b.service("read-user-timeline", Sla::p95_ms(sla_ms), |g| {
        let root = g.entry(nginx);
        let ut = g.call_seq(root, user_timeline);
        g.call_par(ut, &[utl_mc, utl_db]);
        let post = g.call_seq(ut, post_storage);
        g.call_par(post, &[post_mc, post_db]);
        g.call_seq(ut, user_service);
    });

    let app = b.build().expect("social network topology is valid");
    debug_assert_eq!(app.microservice_count(), 36);
    BenchmarkApp {
        app,
        shared: vec![post_storage, social_graph, user_service],
        services: vec![compose_svc, read_home_svc, read_user_svc],
    }
}

/// The Media Service application: 38 unique microservices, one service
/// (compose-review).
pub fn media_service(sla_ms: f64) -> BenchmarkApp {
    let mut b = AppBuilder::new("media-service");
    let r = Resources::default;
    let nginx = b.microservice("nginx", profile(0.5, 1500.0, 0.8), r());
    let compose_review = b.microservice("composeReview", profile(1.0, 1200.0, 1.5), r());
    let unique_id = b.microservice("uniqueId", profile(0.3, 2000.0, 0.4), r());
    let movie_id = b.microservice("movieId", profile(0.8, 1300.0, 1.0), r());
    let review_text = b.microservice("text", profile(0.8, 1400.0, 1.0), r());
    let rating = b.microservice("rating", profile(0.9, 1200.0, 1.0), r());
    let user = b.microservice("userService", profile(1.5, 900.0, 1.2), r());
    let review_storage = b.microservice("reviewStorage", profile(3.5, 500.0, 1.8), r());
    let user_review = b.microservice("userReview", profile(3.0, 600.0, 1.6), r());
    let movie_review = b.microservice("movieReview", profile(3.0, 600.0, 1.6), r());
    let mut tiers = vec![
        nginx,
        compose_review,
        unique_id,
        movie_id,
        review_text,
        rating,
        user,
        review_storage,
        user_review,
        movie_review,
    ];
    // memcached + mongodb per stateful tier, plus auxiliaries: total 38.
    let mut caches = Vec::new();
    for owner in [
        "user",
        "reviewStorage",
        "userReview",
        "movieReview",
        "movieId",
        "rating",
        "plot",
        "movieInfo",
        "castInfo",
    ] {
        let mc = b.microservice(format!("{owner}Memcached"), profile(0.4, 1800.0, 0.3), r());
        let db = b.microservice(format!("{owner}MongoDB"), profile(0.6, 1600.0, 6.0), r());
        caches.push((mc, db));
        tiers.push(mc);
        tiers.push(db);
    }
    for name in [
        "plotService",
        "movieInfoService",
        "castInfoService",
        "pageService",
        "videoService",
        "photoService",
        "jaegerAgent",
        "rateLimiter",
        "recommender",
        "searchIndex",
    ] {
        tiers.push(b.microservice(name, profile(0.6, 1500.0, 0.7), r()));
    }

    let svc = b.service("compose-review", Sla::p95_ms(sla_ms), |g| {
        let root = g.entry(nginx);
        let cr = g.call_seq(root, compose_review);
        let pre = g.call_par(cr, &[unique_id, movie_id, review_text, rating]);
        g.call_seq(pre[1], caches[4].0);
        let u = g.call_seq(cr, user);
        g.call_par(u, &[caches[0].0, caches[0].1]);
        let rs = g.call_seq(cr, review_storage);
        g.call_par(rs, &[caches[1].0, caches[1].1]);
        let ur = g.call_seq(cr, user_review);
        g.call_par(ur, &[caches[2].0, caches[2].1]);
        let mr = g.call_seq(cr, movie_review);
        g.call_par(mr, &[caches[3].0, caches[3].1]);
    });

    let app = b.build().expect("media service topology is valid");
    debug_assert_eq!(app.microservice_count(), 38);
    BenchmarkApp {
        app,
        shared: Vec::new(),
        services: vec![svc],
    }
}

/// The Hotel Reservation application: 15 unique microservices, 4 services
/// (search, recommend, reserve, user-login), 3 shared microservices
/// (profile, rate, reservation).
pub fn hotel_reservation(sla_ms: f64) -> BenchmarkApp {
    let mut b = AppBuilder::new("hotel-reservation");
    let r = Resources::default;
    let frontend = b.microservice("frontend", profile(0.5, 1500.0, 0.8), r());
    let search = b.microservice("search", profile(1.0, 1100.0, 1.2), r());
    let geo = b.microservice("geo", profile(1.2, 1000.0, 1.2), r());
    let rate = b.microservice("rate", profile(3.0, 600.0, 1.6), r());
    let profile_svc = b.microservice("profile", profile(3.2, 550.0, 1.7), r());
    let recommend = b.microservice("recommendation", profile(1.1, 1100.0, 1.2), r());
    let user = b.microservice("user", profile(0.9, 1200.0, 1.0), r());
    let reservation = b.microservice("reservation", profile(3.5, 500.0, 1.8), r());
    let geo_db = b.microservice("geoMongoDB", profile(0.6, 1600.0, 6.0), r());
    let rate_mc = b.microservice("rateMemcached", profile(0.4, 1800.0, 0.3), r());
    let profile_mc = b.microservice("profileMemcached", profile(0.4, 1800.0, 0.3), r());
    let profile_db = b.microservice("profileMongoDB", profile(0.6, 1600.0, 6.0), r());
    let user_db = b.microservice("userMongoDB", profile(0.6, 1600.0, 6.0), r());
    let resv_mc = b.microservice("reservationMemcached", profile(0.4, 1800.0, 0.3), r());
    let resv_db = b.microservice("reservationMongoDB", profile(0.6, 1600.0, 6.0), r());

    let search_svc = b.service("search-hotel", Sla::p95_ms(sla_ms), |g| {
        let root = g.entry(frontend);
        let s = g.call_seq(root, search);
        let near = g.call_seq(s, geo);
        g.call_seq(near, geo_db);
        let rt = g.call_seq(s, rate);
        g.call_seq(rt, rate_mc);
        let pr = g.call_seq(root, profile_svc);
        g.call_par(pr, &[profile_mc, profile_db]);
    });
    let recommend_svc = b.service("recommend", Sla::p95_ms(sla_ms), |g| {
        let root = g.entry(frontend);
        let rec = g.call_seq(root, recommend);
        g.call_seq(rec, rate);
        let pr = g.call_seq(root, profile_svc);
        g.call_par(pr, &[profile_mc, profile_db]);
    });
    let reserve_svc = b.service("reserve", Sla::p95_ms(sla_ms), |g| {
        let root = g.entry(frontend);
        let u = g.call_seq(root, user);
        g.call_seq(u, user_db);
        let resv = g.call_seq(root, reservation);
        g.call_par(resv, &[resv_mc, resv_db]);
    });
    let login_svc = b.service("user-login", Sla::p95_ms(sla_ms), |g| {
        let root = g.entry(frontend);
        let u = g.call_seq(root, user);
        g.call_seq(u, user_db);
        let pr = g.call_seq(root, profile_svc);
        g.call_seq(pr, profile_mc);
    });

    let app = b.build().expect("hotel reservation topology is valid");
    debug_assert_eq!(app.microservice_count(), 15);
    BenchmarkApp {
        app,
        shared: vec![profile_svc, rate, reservation],
        services: vec![search_svc, recommend_svc, reserve_svc, login_svc],
    }
}

/// All three benchmark applications with a common SLA.
pub fn deathstarbench(sla_ms: f64) -> Vec<BenchmarkApp> {
    vec![
        social_network(sla_ms),
        media_service(sla_ms),
        hotel_reservation(sla_ms),
    ]
}

/// The Fig. 4 microcosm: one service calling userTimeline (U, workload
/// sensitive: steep slope, small intercept) then postStorage (P: flat
/// slope but a large constant storage cost) sequentially.
///
/// The contrast matters: baselines allocate latency targets from *mean*
/// latency, which is dominated by P's large intercept, so they hand the
/// steep U a small target — the failure mode Fig. 4 illustrates.
pub fn fig4_app(sla_ms: f64) -> (App, [MicroserviceId; 2], ServiceId) {
    let mut b = AppBuilder::new("fig4");
    let u = b.microservice(
        "userTimeline",
        profile(4.0, 600.0, 1.2),
        Resources::default(),
    );
    let p = b.microservice(
        "postStorage",
        profile(0.3, 1800.0, 15.0),
        Resources::default(),
    );
    let svc = b.service("read-user-timeline", Sla::p95_ms(sla_ms), |g| {
        let root = g.entry(u);
        g.call_seq(root, p);
    });
    (b.build().expect("valid"), [u, p], svc)
}

/// The Fig. 5 sharing microcosm: service 1 = U → P, service 2 = H → P,
/// with U more sensitive than H and P shared.
pub fn fig5_app(sla_ms: f64) -> (App, [MicroserviceId; 3], [ServiceId; 2]) {
    let mut b = AppBuilder::new("fig5");
    let u = b.microservice(
        "userTimeline",
        profile(4.0, 600.0, 1.5),
        Resources::default(),
    );
    let h = b.microservice(
        "homeTimeline",
        profile(0.4, 1500.0, 1.2),
        Resources::default(),
    );
    let p = b.microservice(
        "postStorage",
        profile(1.5, 900.0, 1.5),
        Resources::default(),
    );
    let s1 = b.service("svc-1", Sla::p95_ms(sla_ms), |g| {
        let root = g.entry(u);
        g.call_seq(root, p);
    });
    let s2 = b.service("svc-2", Sla::p95_ms(sla_ms), |g| {
        let root = g.entry(h);
        g.call_seq(root, p);
    });
    (b.build().expect("valid"), [u, h, p], [s1, s2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn social_network_shape_matches_paper() {
        let bench = social_network(200.0);
        assert_eq!(bench.app.microservice_count(), 36);
        assert_eq!(bench.app.service_count(), 3);
        let shared = bench.app.shared_microservices();
        for ms in &bench.shared {
            assert!(shared.contains(ms), "{ms} should be shared");
        }
        assert!(shared.len() >= 3);
    }

    #[test]
    fn media_service_shape_matches_paper() {
        let bench = media_service(200.0);
        assert_eq!(bench.app.microservice_count(), 38);
        assert_eq!(bench.app.service_count(), 1);
    }

    #[test]
    fn hotel_reservation_shape_matches_paper() {
        let bench = hotel_reservation(200.0);
        assert_eq!(bench.app.microservice_count(), 15);
        assert_eq!(bench.app.service_count(), 4);
        assert!(
            bench.app.shared_microservices().len() >= 3,
            "profile, rate, reservation and user/frontend are shared"
        );
    }

    #[test]
    fn storage_tiers_are_more_sensitive_than_logic() {
        let bench = social_network(200.0);
        let app = &bench.app;
        let itf = erms_core::latency::Interference::default();
        let nginx = app.microservice_by_name("nginx").unwrap();
        let post = app.microservice_by_name("postStorage").unwrap();
        let slope = |ms| app.microservice(ms).unwrap().profile.low.slope(itf);
        assert!(slope(post) > 3.0 * slope(nginx));
    }

    #[test]
    fn all_profiles_valid_and_slas_feasible() {
        for bench in deathstarbench(200.0) {
            for (_, m) in bench.app.microservices() {
                assert!(m.profile.validate().is_ok(), "{}", m.name);
            }
            // Every service can be planned at a modest workload.
            let w = erms_core::app::WorkloadVector::uniform(
                &bench.app,
                erms_core::app::RequestRate::per_minute(6_000.0),
            );
            let plan = erms_core::manager::ErmsScaler::new(&bench.app)
                .plan(&w, erms_core::latency::Interference::default());
            assert!(plan.is_ok(), "{}: {:?}", bench.app.name(), plan.err());
        }
    }

    #[test]
    fn fig_apps_build() {
        let (app4, [u, p], _) = fig4_app(300.0);
        assert_eq!(app4.microservice_count(), 2);
        assert_ne!(u, p);
        let (app5, _, [s1, s2]) = fig5_app(300.0);
        assert_eq!(app5.service_count(), 2);
        assert_ne!(s1, s2);
        assert_eq!(app5.shared_microservices().len(), 1);
    }
}
