//! iBench-like interference injection (§6.2, §6.4.3).
//!
//! The paper injects controlled interference with iBench [10] — background
//! workloads that saturate a host's CPU or memory to a chosen level. Here
//! interference is expressed directly as background host utilisation,
//! which is exactly what the Erms profiling model consumes (§5.2).

use erms_core::latency::Interference;
use erms_core::provisioning::ClusterState;
use serde::{Deserialize, Serialize};

/// A named interference level, mirroring the iBench sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterferenceLevel {
    /// Idle hosts.
    None,
    /// Moderate CPU pressure (≈45 % host CPU).
    CpuModerate,
    /// Heavy CPU pressure (≈75 % host CPU).
    CpuHeavy,
    /// Moderate memory pressure (≈50 % host memory).
    MemModerate,
    /// Heavy memory pressure (≈80 % host memory).
    MemHeavy,
    /// Combined CPU + memory pressure.
    Mixed,
}

impl InterferenceLevel {
    /// All levels, in sweep order.
    pub fn all() -> [InterferenceLevel; 6] {
        [
            InterferenceLevel::None,
            InterferenceLevel::CpuModerate,
            InterferenceLevel::CpuHeavy,
            InterferenceLevel::MemModerate,
            InterferenceLevel::MemHeavy,
            InterferenceLevel::Mixed,
        ]
    }

    /// The host utilisation this level induces.
    pub fn as_interference(self) -> Interference {
        match self {
            InterferenceLevel::None => Interference::new(0.10, 0.15),
            InterferenceLevel::CpuModerate => Interference::new(0.45, 0.20),
            InterferenceLevel::CpuHeavy => Interference::new(0.75, 0.25),
            InterferenceLevel::MemModerate => Interference::new(0.20, 0.50),
            InterferenceLevel::MemHeavy => Interference::new(0.25, 0.80),
            InterferenceLevel::Mixed => Interference::new(0.60, 0.60),
        }
    }

    /// A short label for result tables.
    pub fn label(self) -> &'static str {
        match self {
            InterferenceLevel::None => "none",
            InterferenceLevel::CpuModerate => "cpu-45%",
            InterferenceLevel::CpuHeavy => "cpu-75%",
            InterferenceLevel::MemModerate => "mem-50%",
            InterferenceLevel::MemHeavy => "mem-80%",
            InterferenceLevel::Mixed => "mixed-60%",
        }
    }
}

/// Injects background (batch-job) load onto a subset of hosts, like
/// launching iBench containers there. `fraction` selects how many hosts
/// are affected (front of the host list).
pub fn inject(state: &mut ClusterState, level: InterferenceLevel, fraction: f64) {
    let n = state.len();
    let affected = ((n as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
    let itf = level.as_interference();
    for host in state.hosts_mut().iter_mut().take(affected) {
        host.background_cpu = itf.cpu * host.cpu_capacity;
        host.background_mem = itf.memory * host.mem_capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erms_core::provisioning::Host;

    #[test]
    fn levels_are_ordered_in_pressure() {
        assert!(
            InterferenceLevel::CpuHeavy.as_interference().cpu
                > InterferenceLevel::CpuModerate.as_interference().cpu
        );
        assert!(
            InterferenceLevel::MemHeavy.as_interference().memory
                > InterferenceLevel::MemModerate.as_interference().memory
        );
    }

    #[test]
    fn inject_affects_requested_fraction() {
        let mut state = ClusterState::new((0..10).map(|_| Host::paper_host()).collect());
        inject(&mut state, InterferenceLevel::CpuHeavy, 0.5);
        let loaded = state
            .hosts()
            .iter()
            .filter(|h| h.background_cpu > 0.0)
            .count();
        assert_eq!(loaded, 5);
        let host = &state.hosts()[0];
        assert!((host.background_cpu / host.cpu_capacity - 0.75).abs() < 1e-9);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            InterferenceLevel::all().iter().map(|l| l.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
