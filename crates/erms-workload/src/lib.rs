//! Workload generators, DeathStarBench-like application topologies and
//! iBench-like interference profiles (§6.1).
//!
//! * [`apps`] — the three benchmark applications the paper evaluates on:
//!   Social Network (36 microservices, 3 services, 3 shared), Media
//!   Service (38, 1) and Hotel Reservation (15, 4, 3 shared);
//! * [`static_load`] — the static workload levels (600–100 000 req/min)
//!   and SLA settings (50–200 ms) of §6.1;
//! * [`dynamic`] — Alibaba-shaped dynamic workload series (diurnal pattern
//!   plus bursts) used in §6.3.2;
//! * [`interference`] — iBench-like interference levels for §6.2/§6.4.3.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod apps;
pub mod dynamic;
pub mod interference;
pub mod static_load;
