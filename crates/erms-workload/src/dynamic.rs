//! Alibaba-shaped dynamic workloads (§6.3.2).
//!
//! The paper replays production workloads from Alibaba clusters, which are
//! dominated by a diurnal pattern with sharp request spikes. This module
//! generates per-minute request-rate series with that shape: a sinusoidal
//! base load, multiplicative noise, and occasional short bursts.

use erms_core::app::RequestRate;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the dynamic workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicWorkload {
    /// Mean request rate (req/min).
    pub base: f64,
    /// Diurnal amplitude as a fraction of `base` (0–1).
    pub amplitude: f64,
    /// Diurnal period in minutes (1440 = one day).
    pub period_min: f64,
    /// Multiplicative noise level (lognormal-ish, fraction of the rate).
    pub noise: f64,
    /// Per-minute probability of starting a burst.
    pub burst_prob: f64,
    /// Burst magnitude as a multiple of the current rate.
    pub burst_scale: f64,
    /// Burst duration in minutes.
    pub burst_minutes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DynamicWorkload {
    fn default() -> Self {
        Self {
            base: 20_000.0,
            amplitude: 0.6,
            period_min: 1_440.0,
            noise: 0.08,
            burst_prob: 0.02,
            burst_scale: 1.8,
            burst_minutes: 3,
            seed: 11,
        }
    }
}

impl DynamicWorkload {
    /// Generates a per-minute rate series of the given length.
    pub fn series(&self, minutes: usize) -> Vec<RequestRate> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut burst_left = 0usize;
        (0..minutes)
            .map(|m| {
                let phase = 2.0 * std::f64::consts::PI * (m as f64) / self.period_min;
                let diurnal = 1.0 + self.amplitude * phase.sin();
                let noise = 1.0 + self.noise * (rng.gen::<f64>() * 2.0 - 1.0);
                if burst_left > 0 {
                    burst_left -= 1;
                } else if rng.gen_bool(self.burst_prob.clamp(0.0, 1.0)) {
                    burst_left = self.burst_minutes;
                }
                let burst = if burst_left > 0 {
                    self.burst_scale
                } else {
                    1.0
                };
                RequestRate::per_minute((self.base * diurnal * noise * burst).max(0.0))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_has_diurnal_swing() {
        let w = DynamicWorkload {
            burst_prob: 0.0,
            noise: 0.0,
            period_min: 100.0,
            ..DynamicWorkload::default()
        };
        let series = w.series(100);
        let max = series.iter().map(|r| r.as_per_minute()).fold(0.0, f64::max);
        let min = series
            .iter()
            .map(|r| r.as_per_minute())
            .fold(f64::INFINITY, f64::min);
        assert!(max > 1.5 * min, "max {max} min {min}");
    }

    #[test]
    fn bursts_exceed_envelope() {
        let base = DynamicWorkload {
            burst_prob: 0.0,
            ..DynamicWorkload::default()
        };
        let bursty = DynamicWorkload {
            burst_prob: 0.1,
            burst_scale: 3.0,
            ..DynamicWorkload::default()
        };
        let calm_max = base
            .series(500)
            .iter()
            .map(|r| r.as_per_minute())
            .fold(0.0, f64::max);
        let burst_max = bursty
            .series(500)
            .iter()
            .map(|r| r.as_per_minute())
            .fold(0.0, f64::max);
        assert!(burst_max > 1.5 * calm_max);
    }

    #[test]
    fn deterministic_and_non_negative() {
        let w = DynamicWorkload::default();
        let a = w.series(200);
        let b = w.series(200);
        assert_eq!(a, b);
        assert!(a.iter().all(|r| r.as_per_minute() >= 0.0));
    }
}
