//! Model-based end-to-end latency evaluation of a scaling plan.
//!
//! Given container counts, per-service workloads and interference, this
//! module composes the piecewise-linear microservice latencies (Eq. 15)
//! through each service's dependency graph — sequential stages add up,
//! parallel calls contribute their maximum — to predict the tail end-to-end
//! latency `latency_k(n⃗)` of Eq. (2) and check SLAs.
//!
//! The effective per-container workload at a microservice honours the
//! plan's scheduling policy: under FCFS every service's requests wait
//! behind the total arrival stream; under priority scheduling service `k`
//! waits only behind services with equal or higher priority (Eqs. 13–14).

use std::collections::BTreeMap;

use crate::app::{App, WorkloadVector};
use crate::autoscaler::ScalingPlan;
use crate::error::Result;
use crate::ids::{MicroserviceId, NodeId, ServiceId};
use crate::latency::Interference;

/// Interference as experienced per microservice (containers of different
/// microservices can sit on differently-loaded hosts, §5.4).
pub trait InterferenceMap {
    /// The interference experienced by the containers of `ms`.
    fn at(&self, ms: MicroserviceId) -> Interference;
}

impl InterferenceMap for Interference {
    fn at(&self, _: MicroserviceId) -> Interference {
        *self
    }
}

impl InterferenceMap for BTreeMap<MicroserviceId, Interference> {
    fn at(&self, ms: MicroserviceId) -> Interference {
        self.get(&ms).copied().unwrap_or_default()
    }
}

impl<F: Fn(MicroserviceId) -> Interference> InterferenceMap for F {
    fn at(&self, ms: MicroserviceId) -> Interference {
        self(ms)
    }
}

/// The workload (calls/min) whose processing delays requests of `service`
/// at microservice `ms`, given the plan's scheduling policy.
pub fn effective_workload(
    app: &App,
    plan: &ScalingPlan,
    workloads: &WorkloadVector,
    service: ServiceId,
    ms: MicroserviceId,
) -> Result<f64> {
    match plan.priority_order(ms) {
        Some(order) => {
            let mut acc = 0.0;
            for &other in order {
                let other_svc = app.service(other)?;
                acc +=
                    workloads.rate(other).as_per_minute() * other_svc.graph.calls_per_request(ms);
                if other == service {
                    return Ok(acc);
                }
            }
            // Service not in the recorded order (e.g. newly added): it is
            // effectively lowest priority and waits behind everything.
            Ok(app.microservice_workload(ms, workloads))
        }
        None => Ok(app.microservice_workload(ms, workloads)),
    }
}

/// Predicted tail latency of one microservice as experienced by `service`
/// under the plan. Returns `f64::INFINITY` when the microservice has load
/// but no containers.
pub fn microservice_latency(
    app: &App,
    plan: &ScalingPlan,
    workloads: &WorkloadVector,
    service: ServiceId,
    ms: MicroserviceId,
    itf: &impl InterferenceMap,
) -> Result<f64> {
    let gamma = effective_workload(app, plan, workloads, service, ms)?;
    let n = plan.containers(ms);
    let m = app.microservice(ms)?;
    if n == 0 {
        return Ok(if gamma > 0.0 { f64::INFINITY } else { 0.0 });
    }
    Ok(m.profile.eval(gamma / n as f64, itf.at(ms)))
}

/// Predicted tail end-to-end latency of a service under a plan (the
/// `latency_k(n⃗)` of Eq. 2), composing per-microservice latencies through
/// the dependency graph.
pub fn service_latency(
    app: &App,
    plan: &ScalingPlan,
    workloads: &WorkloadVector,
    service: ServiceId,
    itf: &impl InterferenceMap,
) -> Result<f64> {
    let svc = app.service(service)?;
    // Per-microservice latency is deployment-wide; memoise per ms.
    let mut cache: BTreeMap<MicroserviceId, f64> = BTreeMap::new();
    for ms in svc.graph.microservices() {
        let l = microservice_latency(app, plan, workloads, service, ms, itf)?;
        cache.insert(ms, l);
    }
    Ok(subtree_latency(svc, svc.graph.root(), &cache))
}

fn subtree_latency(
    svc: &crate::app::Service,
    node_id: NodeId,
    ms_latency: &BTreeMap<MicroserviceId, f64>,
) -> f64 {
    let node = svc.graph.node(node_id);
    let own = ms_latency[&node.microservice];
    let downstream: f64 = node
        .stages
        .iter()
        .map(|stage| {
            stage
                .iter()
                .map(|&child| subtree_latency(svc, child, ms_latency))
                .fold(0.0, f64::max)
        })
        .sum();
    node.multiplicity * (own + downstream)
}

/// Predicted end-to-end latencies for all services.
pub fn all_service_latencies(
    app: &App,
    plan: &ScalingPlan,
    workloads: &WorkloadVector,
    itf: &impl InterferenceMap,
) -> Result<BTreeMap<ServiceId, f64>> {
    app.services()
        .map(|(id, _)| service_latency(app, plan, workloads, id, itf).map(|l| (id, l)))
        .collect()
}

/// Workload sensitivity of a service under a plan: the derivative of its
/// end-to-end latency with respect to a *uniform relative* workload
/// increase (`dL/dε` at `γ' = γ·(1+ε)`), decomposed per microservice.
///
/// This is the quantity an operator needs to judge how fragile a plan is
/// to intra-window bursts: a microservice whose contribution dominates the
/// total is the one that blows up first when traffic spikes. Within the
/// linear model, each microservice's term is `slope·γ_eff/n` — the latency
/// it *already* spends above its intercept — scaled by its path
/// multiplicity, so balanced plans (Erms') spread the sensitivity while
/// skewed target splits concentrate it.
///
/// Returns `(total, per_microservice)`; the per-microservice map contains
/// every microservice on the service's worst (most sensitive) path.
pub fn workload_sensitivity(
    app: &App,
    plan: &ScalingPlan,
    workloads: &WorkloadVector,
    service: ServiceId,
    itf: &impl InterferenceMap,
) -> Result<(f64, BTreeMap<MicroserviceId, f64>)> {
    let svc = app.service(service)?;
    // Per-microservice marginal latency under a 1.0-relative increase:
    // slope at the operating point times the effective per-container load.
    let mut marginal: BTreeMap<MicroserviceId, f64> = BTreeMap::new();
    for ms in svc.graph.microservices() {
        let gamma = effective_workload(app, plan, workloads, service, ms)?;
        let n = plan.containers(ms);
        let m = app.microservice(ms)?;
        let value = if n == 0 {
            if gamma > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            let per_container = gamma / n as f64;
            let local_itf = itf.at(ms);
            let sigma = m.profile.cutoff_at(local_itf);
            let slope = if per_container <= sigma {
                m.profile.low.slope(local_itf)
            } else {
                m.profile.high.slope(local_itf)
            };
            slope.max(0.0) * per_container
        };
        marginal.insert(ms, value);
    }
    // Compose through the graph, following the *most sensitive* child per
    // stage (the path that will breach first under a burst).
    fn walk(
        svc: &crate::app::Service,
        node: NodeId,
        marginal: &BTreeMap<MicroserviceId, f64>,
        out: &mut BTreeMap<MicroserviceId, f64>,
    ) -> f64 {
        let n = svc.graph.node(node);
        let own = marginal[&n.microservice];
        let mut downstream = 0.0;
        let mut picks: Vec<NodeId> = Vec::new();
        for stage in &n.stages {
            let mut best: Option<(f64, NodeId)> = None;
            for &child in stage {
                let mut probe = BTreeMap::new();
                let v = walk(svc, child, marginal, &mut probe);
                if best.is_none_or(|(b, _)| v > b) {
                    best = Some((v, child));
                }
            }
            if let Some((v, child)) = best {
                downstream += v;
                picks.push(child);
            }
        }
        for child in picks {
            walk(svc, child, marginal, out);
        }
        out.entry(n.microservice)
            .and_modify(|v| *v += n.multiplicity * own)
            .or_insert(n.multiplicity * own);
        n.multiplicity * (own + downstream)
    }
    let mut contributions = BTreeMap::new();
    let total = walk(svc, svc.graph.root(), &marginal, &mut contributions);
    Ok((total, contributions))
}

/// Checks every service's predicted latency against its SLA.
pub fn plan_meets_slas(
    app: &App,
    plan: &ScalingPlan,
    workloads: &WorkloadVector,
    itf: &impl InterferenceMap,
) -> Result<bool> {
    for (id, svc) in app.services() {
        let latency = service_latency(app, plan, workloads, id, itf)?;
        if latency > svc.sla.threshold_ms + 1e-6 {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppBuilder, RequestRate, Sla};
    use crate::latency::LatencyProfile;
    use crate::resources::Resources;

    fn fixture() -> (App, [MicroserviceId; 3], [ServiceId; 2]) {
        let mut b = AppBuilder::new("eval");
        let u = b.microservice("U", LatencyProfile::linear(0.08, 3.0), Resources::default());
        let h = b.microservice("H", LatencyProfile::linear(0.02, 3.0), Resources::default());
        let p = b.microservice("P", LatencyProfile::linear(0.03, 2.0), Resources::default());
        let s1 = b.service("svc1", Sla::p95_ms(300.0), |g| {
            let root = g.entry(u);
            g.call_seq(root, p);
        });
        let s2 = b.service("svc2", Sla::p95_ms(300.0), |g| {
            let root = g.entry(h);
            g.call_seq(root, p);
        });
        (b.build().unwrap(), [u, h, p], [s1, s2])
    }

    fn rates(app: &App, r: f64) -> WorkloadVector {
        WorkloadVector::uniform(app, RequestRate::per_minute(r))
    }

    #[test]
    fn fcfs_latency_uses_total_workload() {
        let (app, [u, _, p], [s1, _]) = fixture();
        let mut plan = ScalingPlan::new("test");
        plan.set_containers(u, 10);
        plan.set_containers(MicroserviceId::new(1), 10);
        plan.set_containers(p, 10);
        let w = rates(&app, 1000.0);
        // P sees 2000 calls/min over 10 containers -> 200/container.
        let lp = microservice_latency(&app, &plan, &w, s1, p, &Interference::default()).unwrap();
        let expected = 0.03 * 200.0 + 2.0;
        assert!((lp - expected).abs() < 1e-9);
        // End-to-end = U latency + P latency.
        let lu = microservice_latency(&app, &plan, &w, s1, u, &Interference::default()).unwrap();
        let e2e = service_latency(&app, &plan, &w, s1, &Interference::default()).unwrap();
        assert!((e2e - (lu + lp)).abs() < 1e-9);
    }

    #[test]
    fn priority_reduces_high_priority_latency() {
        let (app, [_, _, p], [s1, s2]) = fixture();
        let mut fcfs = ScalingPlan::new("fcfs");
        for (id, _) in app.microservices() {
            fcfs.set_containers(id, 10);
        }
        let mut prio = fcfs.clone();
        prio.set_priority_order(p, vec![s1, s2]);
        let w = rates(&app, 1000.0);
        let itf = Interference::default();
        let l_fcfs = microservice_latency(&app, &fcfs, &w, s1, p, &itf).unwrap();
        let l_prio = microservice_latency(&app, &prio, &w, s1, p, &itf).unwrap();
        assert!(l_prio < l_fcfs, "prio {l_prio} vs fcfs {l_fcfs}");
        // Lowest-priority service still sees the total workload.
        let l2_fcfs = microservice_latency(&app, &fcfs, &w, s2, p, &itf).unwrap();
        let l2_prio = microservice_latency(&app, &prio, &w, s2, p, &itf).unwrap();
        assert!((l2_fcfs - l2_prio).abs() < 1e-9);
    }

    #[test]
    fn zero_containers_means_infinite_latency_under_load() {
        let (app, [u, _, _], [s1, _]) = fixture();
        let plan = ScalingPlan::new("empty");
        let w = rates(&app, 100.0);
        let l = microservice_latency(&app, &plan, &w, s1, u, &Interference::default()).unwrap();
        assert!(l.is_infinite());
        // And zero latency with zero load.
        let l0 = microservice_latency(
            &app,
            &plan,
            &WorkloadVector::new(),
            s1,
            u,
            &Interference::default(),
        )
        .unwrap();
        assert_eq!(l0, 0.0);
    }

    #[test]
    fn parallel_stage_takes_max() {
        let mut b = AppBuilder::new("par");
        let root_ms = b.microservice(
            "root",
            LatencyProfile::linear(0.0, 1.0),
            Resources::default(),
        );
        let fast = b.microservice(
            "fast",
            LatencyProfile::linear(0.0, 2.0),
            Resources::default(),
        );
        let slow = b.microservice(
            "slow",
            LatencyProfile::linear(0.0, 9.0),
            Resources::default(),
        );
        let svc = b.service("s", Sla::p95_ms(100.0), |g| {
            let r = g.entry(root_ms);
            g.call_par(r, &[fast, slow]);
        });
        let app = b.build().unwrap();
        let mut plan = ScalingPlan::new("t");
        for (id, _) in app.microservices() {
            plan.set_containers(id, 1);
        }
        let w = rates(&app, 10.0);
        let e2e = service_latency(&app, &plan, &w, svc, &Interference::default()).unwrap();
        assert!((e2e - (1.0 + 9.0)).abs() < 1e-9);
    }

    #[test]
    fn multiplicity_scales_subtree() {
        let mut b = AppBuilder::new("mult");
        let a = b.microservice("a", LatencyProfile::linear(0.0, 1.0), Resources::default());
        let c = b.microservice("c", LatencyProfile::linear(0.0, 4.0), Resources::default());
        let svc = b.service("s", Sla::p95_ms(100.0), |g| {
            let root = g.entry(a);
            g.call_seq_n(root, c, 3.0);
        });
        let app = b.build().unwrap();
        let mut plan = ScalingPlan::new("t");
        for (id, _) in app.microservices() {
            plan.set_containers(id, 1);
        }
        let w = rates(&app, 10.0);
        let e2e = service_latency(&app, &plan, &w, svc, &Interference::default()).unwrap();
        assert!((e2e - (1.0 + 3.0 * 4.0)).abs() < 1e-9);
    }

    #[test]
    fn sensitivity_decomposes_the_burst_exposure() {
        let (app, [u, _, p], [s1, _]) = fixture();
        let mut plan = ScalingPlan::new("t");
        for (id, _) in app.microservices() {
            plan.set_containers(id, 10);
        }
        let w = rates(&app, 1000.0);
        let itf = Interference::default();
        let (total, contributions) = workload_sensitivity(&app, &plan, &w, s1, &itf).unwrap();
        // U: slope 0.08, per-container load 100 -> 8.0; P (shared, 2000
        // calls over 10 containers): slope 0.03 * 200 -> 6.0.
        assert!((contributions[&u] - 8.0).abs() < 1e-9, "{contributions:?}");
        assert!((contributions[&p] - 6.0).abs() < 1e-9);
        assert!((total - 14.0).abs() < 1e-9);
        // Halving U's containers doubles its exposure.
        plan.set_containers(u, 5);
        let (total2, _) = workload_sensitivity(&app, &plan, &w, s1, &itf).unwrap();
        assert!(total2 > total);
    }

    #[test]
    fn sensitivity_is_infinite_without_containers() {
        let (app, _, [s1, _]) = fixture();
        let plan = ScalingPlan::new("empty");
        let w = rates(&app, 100.0);
        let (total, _) =
            workload_sensitivity(&app, &plan, &w, s1, &Interference::default()).unwrap();
        assert!(total.is_infinite());
    }

    #[test]
    fn per_microservice_interference_map() {
        let (app, [u, _, _], [s1, _]) = fixture();
        let mut plan = ScalingPlan::new("t");
        for (id, _) in app.microservices() {
            plan.set_containers(id, 10);
        }
        let w = rates(&app, 1000.0);
        let mut map = BTreeMap::new();
        map.insert(u, Interference::new(0.9, 0.9));
        // Flat profiles ignore interference, so just exercise the paths.
        let a = service_latency(&app, &plan, &w, s1, &map).unwrap();
        let b2 = service_latency(&app, &plan, &w, s1, &Interference::default()).unwrap();
        assert!((a - b2).abs() < 1e-9);
        assert!(plan_meets_slas(&app, &plan, &w, &Interference::default()).unwrap());
    }
}
