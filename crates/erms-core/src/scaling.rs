//! Latency-target computation and container scaling (§4.1–§4.2, §5.3.1).
//!
//! Given a service's merged dependency graph, the optimal latency target of
//! each (virtual) microservice follows the closed-form KKT solution of
//! Eq. (5):
//!
//! ```text
//! target_i = b_i + √(a_i·γ_i·R_i) / Σ_j √(a_j·γ_j·R_j) · (SLA − Σ_j b_j)
//! n_i      = a_i·γ_i / (target_i − b_i)
//! ```
//!
//! [`plan_service`] runs the full per-service pipeline: resolve piecewise
//! parameters at the observed interference, merge the graph
//! ([`MergedGraph`]), distribute targets, and apply the *two-interval
//! selection rule* of §5.3.1 — start from the high-workload interval, then
//! recompute once with low-interval parameters for microservices whose
//! allocated target falls below their knee latency. The dependency graph is
//! processed at most twice, as in the paper.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::app::{App, RequestRate};
use crate::cache::PlanCache;
use crate::error::{Error, Result};
use crate::ids::{MicroserviceId, ServiceId};
use crate::latency::{Interference, Interval};
use crate::merge::{MergedGraph, VirtualParams};
use crate::resources::ClusterCapacity;

/// One microservice of a sequential chain, for direct use of Eq. (5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChainItem {
    /// Latency slope `a` (ms per call/min per container).
    pub a: f64,
    /// Latency intercept `b` (ms).
    pub b: f64,
    /// Dominant resource demand `R` of one container.
    pub r: f64,
    /// Workload γ in calls per minute.
    pub gamma: f64,
}

impl ChainItem {
    /// Creates a chain item.
    pub fn new(a: f64, b: f64, r: f64, gamma: f64) -> Self {
        Self { a, b, r, gamma }
    }
}

/// Optimal latency targets for a sequential chain (Eq. 5).
///
/// Returns `None` when `sla_ms` does not exceed the intercept sum (the
/// latency floor).
///
/// ```
/// use erms_core::scaling::{allocate_chain, ChainItem};
///
/// // The more workload-sensitive microservice receives the larger target.
/// let chain = [
///     ChainItem::new(0.08, 3.0, 0.1, 10_000.0), // steep
///     ChainItem::new(0.02, 1.0, 0.1, 10_000.0), // flat
/// ];
/// let targets = allocate_chain(&chain, 100.0).expect("feasible");
/// assert!(targets[0] > targets[1]);
/// assert!((targets.iter().sum::<f64>() - 100.0).abs() < 1e-9);
/// ```
pub fn allocate_chain(items: &[ChainItem], sla_ms: f64) -> Option<Vec<f64>> {
    if items.is_empty() {
        return Some(Vec::new());
    }
    let floor: f64 = items.iter().map(|i| i.b).sum();
    if !(sla_ms.is_finite() && sla_ms > floor) {
        return None;
    }
    let weights: Vec<f64> = items
        .iter()
        .map(|i| (i.a * i.gamma * i.r).max(0.0).sqrt())
        .collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        // Degenerate chain (all slopes/workloads zero): split slack evenly.
        let share = (sla_ms - floor) / items.len() as f64;
        return Some(items.iter().map(|i| i.b + share).collect());
    }
    Some(
        items
            .iter()
            .zip(&weights)
            .map(|(i, w)| i.b + w / total * (sla_ms - floor))
            .collect(),
    )
}

/// Container count implied by a latency target: `n = a·γ / (target − b)`.
///
/// Returns `f64::INFINITY` when the target does not exceed the intercept.
pub fn containers_for_target(a: f64, gamma: f64, b: f64, target_ms: f64) -> f64 {
    let slack = target_ms - b;
    if slack <= 0.0 {
        return f64::INFINITY;
    }
    (a * gamma / slack).max(0.0)
}

/// Container count needed so a microservice meets a per-call latency
/// target in the chosen interval of its piecewise profile.
///
/// In the low interval the count must additionally keep the per-container
/// workload at or below the knee σ (`n ≥ γ/σ`), otherwise the container
/// would spill into the queueing regime and the low-interval latency
/// prediction would not hold.
pub fn containers_for_profile(
    profile: &crate::latency::LatencyProfile,
    interval: Interval,
    itf: Interference,
    gamma: f64,
    target_ms: f64,
) -> f64 {
    let p = profile.params(interval, itf);
    let base = containers_for_target(p.a, gamma, p.b, target_ms);
    match interval {
        Interval::High => base,
        Interval::Low => {
            let sigma = profile.cutoff_at(itf);
            if sigma.is_finite() && sigma > 0.0 {
                base.max(gamma / sigma)
            } else {
                base
            }
        }
    }
}

/// Minimal container count such that the *true* piecewise latency
/// `profile.eval(γ/n, itf)` stays at or below `target_ms` — i.e. the exact
/// inversion of the measured latency curve ("scale until under target").
///
/// Baseline schemes use this back-end so that scheme comparisons differ
/// only in how latency *targets* are chosen, exactly as in the paper's
/// evaluation. Returns `f64::INFINITY` when the target is below the
/// zero-load latency.
pub fn invert_profile(
    profile: &crate::latency::LatencyProfile,
    itf: Interference,
    gamma: f64,
    target_ms: f64,
) -> f64 {
    if gamma <= 0.0 {
        return 0.0;
    }
    let sigma = profile.cutoff_at(itf);
    let high = profile.params(Interval::High, itf);
    // Try the post-knee branch: valid when the implied per-container load
    // sits at or above the knee.
    if sigma.is_finite() {
        let g_high = (target_ms - high.b) / high.a;
        if g_high >= sigma && g_high > 0.0 {
            return gamma / g_high;
        }
    } else {
        let g = (target_ms - high.b) / high.a;
        return if g > 0.0 { gamma / g } else { f64::INFINITY };
    }
    // Pre-knee branch, capped at the knee.
    let low = profile.params(Interval::Low, itf);
    let g_low = ((target_ms - low.b) / low.a).min(sigma);
    if g_low > 0.0 {
        gamma / g_low
    } else {
        f64::INFINITY
    }
}

/// Optimal total resource usage of a sequential chain:
/// `(Σ√(a·γ·R))² / (SLA − Σb)` — the quantity compared in Theorem 1.
///
/// Returns `None` when the SLA is infeasible.
pub fn chain_resource_usage(items: &[ChainItem], sla_ms: f64) -> Option<f64> {
    let targets = allocate_chain(items, sla_ms)?;
    Some(
        items
            .iter()
            .zip(&targets)
            .map(|(i, t)| containers_for_target(i.a, i.gamma, i.b, *t) * i.r)
            .sum(),
    )
}

/// Configuration of the Erms scaler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalerConfig {
    /// Cluster capacity used to normalise dominant resource demands (Eq. 3).
    pub capacity: ClusterCapacity,
    /// Maximum number of recomputations for the two-interval rule of
    /// §5.3.1. The paper processes each graph at most twice, i.e. one
    /// recomputation.
    pub interval_recomputations: usize,
    /// Ablation hook: force every microservice onto one interval instead
    /// of applying the §5.3.1 selection rule. `None` (the default) runs
    /// the real algorithm.
    pub interval_override: Option<Interval>,
}

impl Default for ScalerConfig {
    fn default() -> Self {
        Self {
            capacity: ClusterCapacity::paper_cluster(),
            interval_recomputations: 1,
            interval_override: None,
        }
    }
}

/// The outcome of latency-target computation for one service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServicePlan {
    /// The planned service.
    pub service: ServiceId,
    /// Folded latency target per graph node (indexed by `NodeId`), in ms.
    /// A node invoked `m` times per request carries an `m`-fold target.
    pub node_targets_ms: Vec<f64>,
    /// Per-call latency target for each microservice this service uses
    /// (minimum over its call sites), in ms.
    pub ms_targets_ms: BTreeMap<MicroserviceId, f64>,
    /// Fractional container demand per microservice implied by this
    /// service's targets and effective workloads.
    pub ms_containers: BTreeMap<MicroserviceId, f64>,
    /// The piecewise interval each microservice's parameters were drawn
    /// from after the §5.3.1 selection rule.
    pub ms_intervals: BTreeMap<MicroserviceId, Interval>,
}

impl ServicePlan {
    /// An all-zero plan for an idle service (zero workload).
    pub(crate) fn idle(app: &App, service: ServiceId) -> Result<Self> {
        let svc = app.service(service)?;
        let node_count = svc.graph.len();
        let mut ms_targets = BTreeMap::new();
        let mut ms_containers = BTreeMap::new();
        let mut ms_intervals = BTreeMap::new();
        for ms in svc.graph.microservices() {
            ms_targets.insert(ms, svc.sla.threshold_ms);
            ms_containers.insert(ms, 0.0);
            ms_intervals.insert(ms, Interval::Low);
        }
        Ok(Self {
            service,
            node_targets_ms: vec![svc.sla.threshold_ms; node_count],
            ms_targets_ms: ms_targets,
            ms_containers,
            ms_intervals,
        })
    }
}

/// The effective workload (calls per minute) each microservice must absorb
/// *ahead of or together with* one service's requests.
///
/// * Under exclusive use this is the service's own call rate at the
///   microservice.
/// * Under FCFS sharing it is still the service's own rate for *target*
///   computation (targets are allocated per service, §2.3), while container
///   sizing uses the total rate.
/// * Under priority scheduling it is the cumulative rate
///   `Σ_{l ≤ k} γ_{l,i}` of all services with equal or higher priority
///   (§5.3.2).
pub type EffectiveWorkloads = BTreeMap<MicroserviceId, f64>;

/// Builds the default effective-workload map of one service: its own call
/// rate at every microservice it uses.
pub fn own_workloads(
    app: &App,
    service: ServiceId,
    rate: RequestRate,
) -> Result<EffectiveWorkloads> {
    let svc = app.service(service)?;
    Ok(svc
        .graph
        .microservices()
        .into_iter()
        .map(|ms| (ms, rate.as_per_minute() * svc.graph.calls_per_request(ms)))
        .collect())
}

/// Computes latency targets and container demands for one service
/// (§5.3.1), given the effective workload its requests experience at every
/// microservice.
///
/// # Errors
///
/// * [`Error::SlaInfeasible`] when the SLA is below the latency floor;
/// * [`Error::UnknownService`] / [`Error::UnknownMicroservice`] for foreign
///   ids.
pub fn plan_service(
    app: &App,
    service: ServiceId,
    rate: RequestRate,
    eff_workloads: &EffectiveWorkloads,
    itf: Interference,
    config: &ScalerConfig,
) -> Result<ServicePlan> {
    plan_service_cached(app, service, rate, eff_workloads, itf, config, None)
}

/// [`plan_service`] with an optional [`PlanCache`] memoizing the graph
/// merge (Alg. 1).
///
/// With `Some(cache)` the merge tree for each `(graph, folded params)` pair
/// is computed once and replayed on subsequent rounds; the replay is
/// bit-identical to the cold computation (the cache hits only on exact
/// input equality), so plans are unchanged. With `None` this is exactly
/// [`plan_service`].
pub fn plan_service_cached(
    app: &App,
    service: ServiceId,
    rate: RequestRate,
    eff_workloads: &EffectiveWorkloads,
    itf: Interference,
    config: &ScalerConfig,
    cache: Option<&PlanCache>,
) -> Result<ServicePlan> {
    let svc = app.service(service)?;
    if svc.graph.is_empty() {
        return Err(Error::EmptyGraph { service });
    }
    let gamma_svc = rate.as_per_minute();
    if gamma_svc <= 0.0 {
        return ServicePlan::idle(app, service);
    }

    let mults = svc.graph.effective_multiplicities();
    let ms_list = svc.graph.microservices();
    // §5.3.1: start from the high-workload interval — it corresponds to
    // less resource consumption — then recompute with low-interval
    // parameters where the allocated target proves to sit below the knee.
    // (`interval_override` forces a single interval, for ablations.)
    let initial = config.interval_override.unwrap_or(Interval::High);
    let mut intervals: BTreeMap<MicroserviceId, Interval> =
        ms_list.iter().map(|&ms| (ms, initial)).collect();

    let mut pass = 0usize;
    loop {
        // Resolve folded per-node parameters at the chosen intervals.
        let mut node_params = Vec::with_capacity(svc.graph.len());
        for (id, node) in svc.graph.iter() {
            let ms = node.microservice;
            let m = app.microservice(ms)?;
            let p = m.profile.params(intervals[&ms], itf);
            let gamma_eff = eff_workloads
                .get(&ms)
                .copied()
                .unwrap_or_else(|| gamma_svc * svc.graph.calls_per_request(ms));
            let mult = mults[id.index()];
            // Folded slope: the node's latency is m·(a·γ_eff/n + b)
            //             = (a·m·γ_eff/γ_svc)·(γ_svc/n) + m·b.
            let a_fold = p.a * mult * (gamma_eff / gamma_svc);
            node_params.push(VirtualParams::new(
                a_fold,
                p.b * mult,
                m.resources.dominant_share(&config.capacity),
            ));
        }

        let (floor_ms, node_targets) = match cache {
            Some(cache) => {
                let merged = cache.merged(&svc.graph, &node_params);
                (
                    merged.floor_ms(),
                    merged.assign_targets(svc.sla.threshold_ms),
                )
            }
            None => {
                let merged = MergedGraph::merge(&svc.graph, &node_params);
                (
                    merged.floor_ms(),
                    merged.assign_targets(svc.sla.threshold_ms),
                )
            }
        };
        let node_targets = node_targets.ok_or(Error::SlaInfeasible {
            service,
            sla_ms: svc.sla.threshold_ms,
            floor_ms,
        })?;

        // Per-call targets: minimum over call sites, unfolded by the
        // effective multiplicity.
        let mut ms_targets: BTreeMap<MicroserviceId, f64> = BTreeMap::new();
        for (id, node) in svc.graph.iter() {
            let per_call = node_targets[id.index()] / mults[id.index()];
            ms_targets
                .entry(node.microservice)
                .and_modify(|t| *t = t.min(per_call))
                .or_insert(per_call);
        }

        // §5.3.1 interval check: a target below the knee latency means the
        // microservice actually operates in the low interval.
        let mut changed = false;
        if config.interval_override.is_none() && pass < config.interval_recomputations {
            for (&ms, &target) in &ms_targets {
                if intervals[&ms] == Interval::High {
                    let knee = app.microservice(ms)?.profile.knee_latency(itf);
                    if target < knee {
                        intervals.insert(ms, Interval::Low);
                        changed = true;
                    }
                }
            }
        }
        if changed {
            pass += 1;
            continue;
        }

        // Container demands from the final targets.
        let mut ms_containers = BTreeMap::new();
        for &ms in &ms_list {
            let m = app.microservice(ms)?;
            let gamma_eff = eff_workloads
                .get(&ms)
                .copied()
                .unwrap_or_else(|| gamma_svc * svc.graph.calls_per_request(ms));
            let n =
                containers_for_profile(&m.profile, intervals[&ms], itf, gamma_eff, ms_targets[&ms]);
            ms_containers.insert(ms, n);
        }

        return Ok(ServicePlan {
            service,
            node_targets_ms: node_targets,
            ms_targets_ms: ms_targets,
            ms_containers,
            ms_intervals: intervals,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppBuilder, Sla};
    use crate::latency::LatencyProfile;
    use crate::resources::Resources;

    fn linear_app(slopes: &[(f64, f64)], sla: f64) -> (App, Vec<MicroserviceId>, ServiceId) {
        let mut b = AppBuilder::new("chain");
        let mss: Vec<_> = slopes
            .iter()
            .enumerate()
            .map(|(i, &(a, b_ms))| {
                b.microservice(
                    format!("m{i}"),
                    LatencyProfile::linear(a, b_ms),
                    Resources::default(),
                )
            })
            .collect();
        let svc = b.service("chain", Sla::p95_ms(sla), |g| {
            let mut prev = g.entry(mss[0]);
            for &ms in &mss[1..] {
                prev = g.call_seq(prev, ms);
            }
        });
        (b.build().unwrap(), mss, svc)
    }

    #[test]
    fn allocate_chain_matches_eq5() {
        let items = [
            ChainItem::new(0.08, 3.0, 0.1, 1000.0),
            ChainItem::new(0.02, 1.0, 0.1, 1000.0),
        ];
        let sla = 100.0;
        let targets = allocate_chain(&items, sla).unwrap();
        let w0 = (0.08f64 * 1000.0 * 0.1).sqrt();
        let w1 = (0.02f64 * 1000.0 * 0.1).sqrt();
        let slack = sla - 4.0;
        assert!((targets[0] - (3.0 + w0 / (w0 + w1) * slack)).abs() < 1e-9);
        assert!((targets[1] - (1.0 + w1 / (w0 + w1) * slack)).abs() < 1e-9);
        // Targets sum to the SLA.
        assert!((targets.iter().sum::<f64>() - sla).abs() < 1e-9);
    }

    #[test]
    fn allocate_chain_infeasible() {
        let items = [ChainItem::new(0.1, 60.0, 0.1, 100.0)];
        assert!(allocate_chain(&items, 50.0).is_none());
        assert!(allocate_chain(&items, 60.0).is_none());
        assert!(allocate_chain(&items, 61.0).is_some());
    }

    #[test]
    fn allocate_chain_empty_and_degenerate() {
        assert_eq!(allocate_chain(&[], 100.0), Some(vec![]));
        // Zero workload -> even slack split.
        let items = [
            ChainItem::new(0.1, 2.0, 0.1, 0.0),
            ChainItem::new(0.2, 4.0, 0.1, 0.0),
        ];
        let t = allocate_chain(&items, 26.0).unwrap();
        assert!((t[0] - 12.0).abs() < 1e-9);
        assert!((t[1] - 14.0).abs() < 1e-9);
    }

    #[test]
    fn chain_resource_usage_closed_form() {
        let items = [
            ChainItem::new(0.08, 3.0, 0.1, 1000.0),
            ChainItem::new(0.02, 1.0, 0.2, 1000.0),
        ];
        let sla = 100.0;
        let ru = chain_resource_usage(&items, sla).unwrap();
        let s: f64 = items.iter().map(|i| (i.a * i.gamma * i.r).sqrt()).sum();
        let expected = s * s / (sla - 4.0);
        assert!((ru - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn containers_infinite_below_intercept() {
        assert_eq!(containers_for_target(0.1, 100.0, 5.0, 5.0), f64::INFINITY);
        assert_eq!(containers_for_target(0.1, 100.0, 5.0, 4.0), f64::INFINITY);
        assert!(containers_for_target(0.1, 100.0, 5.0, 10.0).is_finite());
    }

    #[test]
    fn invert_profile_matches_eval() {
        let profile = LatencyProfile::kneed(0.002, 2.0, 0.05, 500.0);
        let itf = Interference::default();
        let gamma = 10_000.0;
        for target in [2.5, 3.0, 5.0, 20.0, 60.0] {
            let n = invert_profile(&profile, itf, gamma, target);
            assert!(n.is_finite(), "target {target}");
            let achieved = profile.eval(gamma / n, itf);
            assert!(
                achieved <= target + 1e-6,
                "target {target}: achieved {achieved} with n {n}"
            );
            // Minimality: slightly fewer containers would violate.
            let worse = profile.eval(gamma / (n * 0.98), itf);
            assert!(worse > target - 1e-6, "target {target} not minimal");
        }
        // Below the zero-load latency: impossible.
        assert_eq!(invert_profile(&profile, itf, gamma, 1.9), f64::INFINITY);
        // Zero workload: no containers needed.
        assert_eq!(invert_profile(&profile, itf, 0.0, 10.0), 0.0);
    }

    #[test]
    fn invert_profile_single_interval() {
        let profile = LatencyProfile::linear(0.01, 2.0);
        let itf = Interference::default();
        let n = invert_profile(&profile, itf, 1000.0, 12.0);
        assert!((n - 1.0).abs() < 1e-9, "{n}");
    }

    #[test]
    fn plan_service_sensitive_ms_gets_higher_target() {
        // Fig. 4: U's latency grows faster with workload than P's, so U is
        // given a higher latency target.
        let (app, mss, svc) = linear_app(&[(0.08, 3.0), (0.02, 2.0)], 300.0);
        let rate = RequestRate::per_minute(40_000.0);
        let eff = own_workloads(&app, svc, rate).unwrap();
        let plan = plan_service(
            &app,
            svc,
            rate,
            &eff,
            Interference::default(),
            &ScalerConfig::default(),
        )
        .unwrap();
        assert!(plan.ms_targets_ms[&mss[0]] > plan.ms_targets_ms[&mss[1]]);
        // Targets sum to the SLA for a chain.
        let sum: f64 = plan.node_targets_ms.iter().sum();
        assert!((sum - 300.0).abs() < 1e-6);
    }

    #[test]
    fn plan_service_meets_sla_in_model() {
        let (app, mss, svc) = linear_app(&[(0.08, 3.0), (0.02, 2.0), (0.05, 1.0)], 200.0);
        let rate = RequestRate::per_minute(20_000.0);
        let eff = own_workloads(&app, svc, rate).unwrap();
        let plan = plan_service(
            &app,
            svc,
            rate,
            &eff,
            Interference::default(),
            &ScalerConfig::default(),
        )
        .unwrap();
        // Evaluate the model latency at the allocated containers.
        let mut total = 0.0;
        for &ms in &mss {
            let m = app.microservice(ms).unwrap();
            let n = plan.ms_containers[&ms];
            let gamma = eff[&ms];
            total += m.profile.eval(gamma / n, Interference::default());
        }
        assert!(total <= 200.0 + 1e-6, "end-to-end {total}");
    }

    #[test]
    fn plan_service_idle_workload() {
        let (app, mss, svc) = linear_app(&[(0.08, 3.0), (0.02, 2.0)], 300.0);
        let plan = plan_service(
            &app,
            svc,
            RequestRate::per_minute(0.0),
            &BTreeMap::new(),
            Interference::default(),
            &ScalerConfig::default(),
        )
        .unwrap();
        assert_eq!(plan.ms_containers[&mss[0]], 0.0);
    }

    #[test]
    fn plan_service_infeasible_sla() {
        let (app, _, svc) = linear_app(&[(0.08, 30.0), (0.02, 30.0)], 50.0);
        let rate = RequestRate::per_minute(1000.0);
        let eff = own_workloads(&app, svc, rate).unwrap();
        let err = plan_service(
            &app,
            svc,
            rate,
            &eff,
            Interference::default(),
            &ScalerConfig::default(),
        )
        .unwrap_err();
        match err {
            Error::SlaInfeasible { floor_ms, .. } => assert!((floor_ms - 60.0).abs() < 1e-9),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn two_interval_rule_switches_to_low() {
        // A kneed profile with a knee at 500 calls/min/container whose knee
        // latency is 0.002·500 + 2 = 3 ms. An SLA of 2.5 ms forces a target
        // below the knee latency, so the scaler must fall back to the
        // low-interval parameters and keep per-container workload at or
        // below the knee.
        let mut b = AppBuilder::new("kneed");
        let profile = LatencyProfile::kneed(0.002, 2.0, 0.05, 500.0);
        let ms = b.microservice("kneed", profile, Resources::default());
        let svc = b.service("s", Sla::p95_ms(2.5), |g| {
            g.entry(ms);
        });
        let app = b.build().unwrap();
        let rate = RequestRate::per_minute(1_000.0);
        let eff = own_workloads(&app, svc, rate).unwrap();
        let plan = plan_service(
            &app,
            svc,
            rate,
            &eff,
            Interference::default(),
            &ScalerConfig::default(),
        )
        .unwrap();
        assert_eq!(plan.ms_intervals[&ms], Interval::Low);
        // Resulting per-container workload is at or below the knee.
        let per_container = eff[&ms] / plan.ms_containers[&ms];
        assert!(per_container <= 500.0 + 1e-6, "{per_container}");
    }

    #[test]
    fn own_workloads_counts_multiplicity() {
        let mut b = AppBuilder::new("mult");
        let a = b.microservice("a", LatencyProfile::linear(0.01, 1.0), Resources::default());
        let c = b.microservice("c", LatencyProfile::linear(0.01, 1.0), Resources::default());
        let svc = b.service("s", Sla::p95_ms(100.0), |g| {
            let root = g.entry(a);
            g.call_seq_n(root, c, 3.0);
        });
        let app = b.build().unwrap();
        let eff = own_workloads(&app, svc, RequestRate::per_minute(100.0)).unwrap();
        assert!((eff[&c] - 300.0).abs() < 1e-9);
        assert!((eff[&a] - 100.0).abs() < 1e-9);
    }
}
