//! The autoscaler abstraction shared by Erms and the baseline schemes, and
//! the [`ScalingPlan`] they produce.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::app::{App, WorkloadVector};
use crate::error::Result;
use crate::ids::{MicroserviceId, ServiceId};
use crate::latency::Interference;
use crate::resources::ClusterCapacity;
use crate::scaling::{ScalerConfig, ServicePlan};

/// Everything an autoscaler may observe when making a decision.
#[derive(Debug, Clone, Copy)]
pub struct ScalingContext<'a> {
    /// The managed application.
    pub app: &'a App,
    /// Current per-service request rates.
    pub workloads: &'a WorkloadVector,
    /// Cluster-average host interference (§5.3.1 feeds the average host
    /// utilisation into the profiling model).
    pub interference: Interference,
    /// Scaler configuration (capacity normalisation, interval passes).
    pub config: &'a ScalerConfig,
}

/// A resource-scaling decision: container counts per microservice, plus the
/// latency targets and (optionally) the service priorities that produced
/// them.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScalingPlan {
    /// Name of the scheme that produced this plan (e.g. `"erms"`).
    pub scheme: String,
    containers: BTreeMap<MicroserviceId, u32>,
    priorities: BTreeMap<MicroserviceId, Vec<ServiceId>>,
    service_plans: BTreeMap<ServiceId, ServicePlan>,
}

impl ScalingPlan {
    /// Creates an empty plan for a scheme.
    pub fn new(scheme: impl Into<String>) -> Self {
        Self {
            scheme: scheme.into(),
            ..Self::default()
        }
    }

    /// Sets the container count of a microservice (rounding up happens at
    /// the caller; counts are integers per §7 "Erms rounds up the number of
    /// containers per microservice").
    pub fn set_containers(&mut self, ms: MicroserviceId, count: u32) {
        self.containers.insert(ms, count);
    }

    /// Container count of a microservice (zero if the plan does not cover
    /// it).
    ///
    /// Note the zero is ambiguous: an *explicit* 0 entry is an instruction
    /// to scale the deployment to zero, while a *missing* entry means the
    /// plan does not govern the microservice at all and provisioning leaves
    /// its current containers untouched. Use [`ScalingPlan::get`] when the
    /// distinction matters (it does for degraded-mode demand shedding).
    pub fn containers(&self, ms: MicroserviceId) -> u32 {
        self.containers.get(&ms).copied().unwrap_or(0)
    }

    /// The container count of a microservice, distinguishing the two zero
    /// cases [`ScalingPlan::containers`] conflates: `Some(0)` is an explicit
    /// scale-to-zero decision (the microservice served zero workload this
    /// round), `None` means the plan does not cover the microservice —
    /// [`provision`](crate::provisioning::provision) will not touch its
    /// deployment.
    pub fn get(&self, ms: MicroserviceId) -> Option<u32> {
        self.containers.get(&ms).copied()
    }

    /// Whether the plan governs this microservice (even with an explicit
    /// zero count).
    pub fn covers(&self, ms: MicroserviceId) -> bool {
        self.containers.contains_key(&ms)
    }

    /// Iterates over `(microservice, containers)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (MicroserviceId, u32)> + '_ {
        self.containers.iter().map(|(&m, &c)| (m, c))
    }

    /// Total number of containers across all microservices — the paper's
    /// primary resource-usage metric (§6.3).
    pub fn total_containers(&self) -> u64 {
        self.containers.values().map(|&c| c as u64).sum()
    }

    /// Total CPU cores requested by the plan.
    pub fn cpu_cores(&self, app: &App) -> f64 {
        self.containers
            .iter()
            .filter_map(|(&ms, &c)| {
                app.microservice(ms)
                    .ok()
                    .map(|m| m.resources.cpu * c as f64)
            })
            .sum()
    }

    /// Total dominant-resource usage `Σ nᵢ·Rᵢ` (the objective of Eq. 2).
    pub fn resource_usage(&self, app: &App, capacity: &ClusterCapacity) -> f64 {
        self.containers
            .iter()
            .filter_map(|(&ms, &c)| {
                app.microservice(ms)
                    .ok()
                    .map(|m| m.resources.dominant_share(capacity) * c as f64)
            })
            .sum()
    }

    /// Records the priority order (highest first) of services at a shared
    /// microservice.
    pub fn set_priority_order(&mut self, ms: MicroserviceId, order: Vec<ServiceId>) {
        self.priorities.insert(ms, order);
    }

    /// The priority order at a shared microservice, highest priority first.
    /// `None` means FCFS (no prioritisation).
    pub fn priority_order(&self, ms: MicroserviceId) -> Option<&[ServiceId]> {
        self.priorities.get(&ms).map(Vec::as_slice)
    }

    /// Whether the plan prioritises any shared microservice.
    pub fn has_priorities(&self) -> bool {
        !self.priorities.is_empty()
    }

    /// Records the per-service latency-target plan that backed this
    /// decision.
    pub fn set_service_plan(&mut self, plan: ServicePlan) {
        self.service_plans.insert(plan.service, plan);
    }

    /// The per-service latency-target plan, if recorded.
    pub fn service_plan(&self, service: ServiceId) -> Option<&ServicePlan> {
        self.service_plans.get(&service)
    }

    /// Iterates over every recorded per-service plan in service-id order
    /// (used by snapshot export; the set may be empty for baseline
    /// schemes that do not compute latency targets).
    pub fn service_plans(&self) -> impl Iterator<Item = &ServicePlan> + '_ {
        self.service_plans.values()
    }

    /// Mutable access to a per-service plan (used by the incremental
    /// planner to update stored plans in place).
    pub fn service_plan_mut(&mut self, service: ServiceId) -> Option<&mut ServicePlan> {
        self.service_plans.get_mut(&service)
    }

    /// Microservices covered by this plan.
    pub fn microservices(&self) -> impl Iterator<Item = MicroserviceId> + '_ {
        self.containers.keys().copied()
    }
}

/// A microservice autoscaler: Erms itself, or one of the baseline schemes
/// (GrandSLAm, Rhythm, Firm).
///
/// Implementations take `&mut self` so learning-based schemes (Firm's RL
/// tuner) can carry state across scaling rounds.
pub trait Autoscaler {
    /// A short scheme name used in result tables (e.g. `"erms"`).
    fn name(&self) -> &str;

    /// Computes a scaling plan for the observed workloads.
    ///
    /// # Errors
    ///
    /// Implementations return [`Error::SlaInfeasible`](crate::Error::SlaInfeasible)
    /// when no allocation can satisfy a service's SLA, and propagate id
    /// lookup failures.
    fn plan(&mut self, ctx: &ScalingContext<'_>) -> Result<ScalingPlan>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppBuilder, Sla};
    use crate::latency::LatencyProfile;
    use crate::resources::Resources;

    fn tiny_app() -> (App, MicroserviceId) {
        let mut b = AppBuilder::new("t");
        let m = b.microservice(
            "m",
            LatencyProfile::linear(0.01, 1.0),
            Resources::new(0.5, 100.0),
        );
        b.service("s", Sla::p95_ms(100.0), |g| {
            g.entry(m);
        });
        (b.build().unwrap(), m)
    }

    #[test]
    fn plan_accounting() {
        let (app, m) = tiny_app();
        let mut plan = ScalingPlan::new("test");
        plan.set_containers(m, 7);
        assert_eq!(plan.containers(m), 7);
        assert_eq!(plan.total_containers(), 7);
        assert!((plan.cpu_cores(&app) - 3.5).abs() < 1e-9);
        assert_eq!(plan.containers(MicroserviceId::new(9)), 0);
    }

    #[test]
    fn priorities_default_to_fcfs() {
        let (_, m) = tiny_app();
        let mut plan = ScalingPlan::new("test");
        assert!(plan.priority_order(m).is_none());
        assert!(!plan.has_priorities());
        plan.set_priority_order(m, vec![ServiceId::new(1), ServiceId::new(0)]);
        assert_eq!(
            plan.priority_order(m),
            Some(&[ServiceId::new(1), ServiceId::new(0)][..])
        );
        assert!(plan.has_priorities());
    }

    #[test]
    fn resource_usage_uses_dominant_share() {
        let (app, m) = tiny_app();
        let cap = ClusterCapacity::new(10.0, 1000.0);
        let mut plan = ScalingPlan::new("test");
        plan.set_containers(m, 4);
        // dominant share = max(0.5/10, 100/1000) = 0.1 -> 4 * 0.1
        assert!((plan.resource_usage(&app, &cap) - 0.4).abs() < 1e-9);
    }
}
