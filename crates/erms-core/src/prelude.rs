//! Convenient re-exports of the most commonly used types.
//!
//! ```
//! use erms_core::prelude::*;
//! ```

pub use crate::actions::{Action, PlanDelta};
pub use crate::app::{App, AppBuilder, Microservice, RequestRate, Service, Sla, WorkloadVector};
pub use crate::autoscaler::{Autoscaler, ScalingContext, ScalingPlan};
pub use crate::cache::PlanCache;
pub use crate::error::{Error, Result};
pub use crate::evaluate::{
    all_service_latencies, plan_meets_slas, service_latency, workload_sensitivity,
};
pub use crate::graph::{DependencyGraph, GraphBuilder, Node};
pub use crate::ids::{MicroserviceId, NodeId, ServiceId};
pub use crate::incremental::{IncrementalPlanner, PlannerMetrics};
pub use crate::latency::{
    CutoffModel, Interference, Interval, LatencyProfile, LinearParams, Segment,
};
pub use crate::manager::{Erms, ErmsManager, ErmsScaler, SchedulingMode};
pub use crate::merge::{MergeTree, MergedGraph, VirtualParams};
pub use crate::multiplexing::{SchemeComparison, SharingScenario};
pub use crate::provisioning::{ClusterState, FailureDomain, Host, HostLifecycle, PlacementPolicy};
pub use crate::resilience::{
    FallbackAction, ResilienceConfig, ResilienceReport, ResilientManager, ResilientOutcome,
};
pub use crate::resources::{ClusterCapacity, HostClass, Resources};
pub use crate::scaling::{
    allocate_chain, chain_resource_usage, containers_for_profile, containers_for_target,
    invert_profile, ChainItem, ScalerConfig, ServicePlan,
};
