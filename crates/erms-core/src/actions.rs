//! Plan deltas: the concrete scale-out / scale-in actions the Deployment
//! module (Fig. 6 ⑥→Kubernetes) must execute to move from one
//! [`ScalingPlan`] to the next.
//!
//! The Online Scaling module emits absolute container counts every round;
//! an orchestrator consumes *differences*. [`PlanDelta::between`] computes
//! them, and the summary accessors answer the questions a rollout
//! controller asks: how much churn, how many pods to create and delete,
//! does anything change at all.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::autoscaler::ScalingPlan;
use crate::ids::MicroserviceId;

/// One scaling action for one microservice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Create this many additional containers.
    ScaleOut(u32),
    /// Remove this many containers.
    ScaleIn(u32),
}

impl Action {
    /// The number of containers touched by the action.
    pub fn magnitude(self) -> u32 {
        match self {
            Action::ScaleOut(n) | Action::ScaleIn(n) => n,
        }
    }
}

/// The difference between two scaling plans.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PlanDelta {
    actions: BTreeMap<MicroserviceId, Action>,
}

impl PlanDelta {
    /// Computes the actions that transform `from` into `to`.
    ///
    /// Microservices absent from a plan count as zero containers, so a
    /// fresh rollout is simply `PlanDelta::between(&ScalingPlan::new(""), &plan)`.
    pub fn between(from: &ScalingPlan, to: &ScalingPlan) -> Self {
        let mut actions = BTreeMap::new();
        let mut all: Vec<MicroserviceId> = from.microservices().chain(to.microservices()).collect();
        all.sort();
        all.dedup();
        for ms in all {
            let before = from.containers(ms);
            let after = to.containers(ms);
            if after > before {
                actions.insert(ms, Action::ScaleOut(after - before));
            } else if before > after {
                actions.insert(ms, Action::ScaleIn(before - after));
            }
        }
        Self { actions }
    }

    /// Whether the two plans are identical in container counts.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Number of microservices whose allocation changes.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// The action for one microservice, if its count changes.
    pub fn action(&self, ms: MicroserviceId) -> Option<Action> {
        self.actions.get(&ms).copied()
    }

    /// Iterates over `(microservice, action)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (MicroserviceId, Action)> + '_ {
        self.actions.iter().map(|(&m, &a)| (m, a))
    }

    /// Total containers created.
    pub fn total_scale_out(&self) -> u64 {
        self.actions
            .values()
            .map(|a| match a {
                Action::ScaleOut(n) => *n as u64,
                Action::ScaleIn(_) => 0,
            })
            .sum()
    }

    /// Total containers removed.
    pub fn total_scale_in(&self) -> u64 {
        self.actions
            .values()
            .map(|a| match a {
                Action::ScaleIn(n) => *n as u64,
                Action::ScaleOut(_) => 0,
            })
            .sum()
    }

    /// Total churn (created + removed) — the rollout cost of the round.
    /// Containers take seconds to start (§6.5.2), so controllers compare
    /// this against the scaling interval.
    pub fn churn(&self) -> u64 {
        self.total_scale_out() + self.total_scale_in()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(i: u32) -> MicroserviceId {
        MicroserviceId::new(i)
    }

    fn plan(counts: &[(u32, u32)]) -> ScalingPlan {
        let mut p = ScalingPlan::new("t");
        for &(m, n) in counts {
            p.set_containers(ms(m), n);
        }
        p
    }

    #[test]
    fn delta_classifies_out_and_in() {
        let from = plan(&[(0, 5), (1, 3), (2, 7)]);
        let to = plan(&[(0, 8), (1, 3), (2, 2)]);
        let delta = PlanDelta::between(&from, &to);
        assert_eq!(delta.action(ms(0)), Some(Action::ScaleOut(3)));
        assert_eq!(delta.action(ms(1)), None);
        assert_eq!(delta.action(ms(2)), Some(Action::ScaleIn(5)));
        assert_eq!(delta.total_scale_out(), 3);
        assert_eq!(delta.total_scale_in(), 5);
        assert_eq!(delta.churn(), 8);
        assert_eq!(delta.len(), 2);
    }

    #[test]
    fn fresh_rollout_is_all_scale_out() {
        let to = plan(&[(0, 4), (1, 2)]);
        let delta = PlanDelta::between(&ScalingPlan::new("empty"), &to);
        assert_eq!(delta.total_scale_out(), 6);
        assert_eq!(delta.total_scale_in(), 0);
    }

    #[test]
    fn identical_plans_have_empty_delta() {
        let a = plan(&[(0, 4)]);
        let delta = PlanDelta::between(&a, &a.clone());
        assert!(delta.is_empty());
        assert_eq!(delta.churn(), 0);
    }

    #[test]
    fn microservices_absent_from_new_plan_are_drained() {
        let from = plan(&[(0, 4)]);
        let to = plan(&[(1, 2)]);
        let delta = PlanDelta::between(&from, &to);
        assert_eq!(delta.action(ms(0)), Some(Action::ScaleIn(4)));
        assert_eq!(delta.action(ms(1)), Some(Action::ScaleOut(2)));
        assert_eq!(delta.iter().count(), 2);
        assert_eq!(Action::ScaleIn(4).magnitude(), 4);
    }
}
