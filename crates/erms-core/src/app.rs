//! Applications: deployed microservices, online services, SLAs and
//! workloads.
//!
//! An [`App`] is the unit Erms manages: a set of *microservices* (each
//! deployed as a fleet of identical containers) plus a set of *online
//! services*, each with an SLA and a tree-shaped
//! [`DependencyGraph`](crate::graph::DependencyGraph) over those
//! microservices. A microservice referenced by multiple services is a
//! *shared microservice* (§2.3).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::graph::{DependencyGraph, GraphBuilder};
use crate::ids::{MicroserviceId, ServiceId};
use crate::latency::LatencyProfile;
use crate::resources::Resources;

/// A service-level agreement on tail end-to-end latency (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sla {
    /// The latency percentile the SLA is defined on (e.g. `0.95`).
    pub percentile: f64,
    /// The latency threshold in milliseconds.
    pub threshold_ms: f64,
}

impl Sla {
    /// An SLA on the 95th-percentile end-to-end latency, as used throughout
    /// the paper's evaluation (§6.1).
    pub fn p95_ms(threshold_ms: f64) -> Self {
        Self {
            percentile: 0.95,
            threshold_ms,
        }
    }

    /// An SLA on the 99th-percentile end-to-end latency.
    pub fn p99_ms(threshold_ms: f64) -> Self {
        Self {
            percentile: 0.99,
            threshold_ms,
        }
    }
}

/// A request arrival rate.
///
/// The paper expresses workloads in requests per minute (600 – 100 000 in
/// §6.1); this newtype prevents unit confusion with per-second or per-ms
/// rates.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct RequestRate(f64);

impl RequestRate {
    /// A rate expressed in requests per minute.
    pub fn per_minute(requests: f64) -> Self {
        Self(requests.max(0.0))
    }

    /// A rate expressed in requests per second.
    pub fn per_second(requests: f64) -> Self {
        Self::per_minute(requests * 60.0)
    }

    /// The rate in requests per minute.
    pub fn as_per_minute(self) -> f64 {
        self.0
    }

    /// The rate in requests per millisecond (used by the simulator).
    pub fn as_per_ms(self) -> f64 {
        self.0 / 60_000.0
    }

    /// Scales the rate by a factor.
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        Self::per_minute(self.0 * factor)
    }
}

/// Per-service request rates for one scaling round.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkloadVector {
    rates: BTreeMap<ServiceId, RequestRate>,
}

impl WorkloadVector {
    /// Creates an empty workload vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the request rate of a service.
    pub fn set(&mut self, service: ServiceId, rate: RequestRate) {
        self.rates.insert(service, rate);
    }

    /// The request rate of a service, or zero if unset.
    pub fn rate(&self, service: ServiceId) -> RequestRate {
        self.rates.get(&service).copied().unwrap_or_default()
    }

    /// Iterates over `(service, rate)` pairs in service-id order.
    pub fn iter(&self) -> impl Iterator<Item = (ServiceId, RequestRate)> + '_ {
        self.rates.iter().map(|(&s, &r)| (s, r))
    }

    /// Builds a uniform workload vector over all of an app's services.
    pub fn uniform(app: &App, rate: RequestRate) -> Self {
        let mut w = Self::new();
        for (id, _) in app.services() {
            w.set(id, rate);
        }
        w
    }
}

impl FromIterator<(ServiceId, RequestRate)> for WorkloadVector {
    fn from_iter<T: IntoIterator<Item = (ServiceId, RequestRate)>>(iter: T) -> Self {
        Self {
            rates: iter.into_iter().collect(),
        }
    }
}

/// A deployed microservice: its latency profile and container shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Microservice {
    /// Human-readable name (unique within the app by convention, not
    /// enforced).
    pub name: String,
    /// Piecewise-linear latency profile (Eq. 15).
    pub profile: LatencyProfile,
    /// Resource request of one container.
    pub resources: Resources,
}

/// An online service: a named request type with an SLA and a dependency
/// graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Service {
    /// Human-readable name.
    pub name: String,
    /// End-to-end tail-latency SLA.
    pub sla: Sla,
    /// The tree-shaped dependency graph of this service.
    pub graph: DependencyGraph,
}

/// A validated application: microservices plus services.
///
/// Construct with [`AppBuilder`]. `App` is immutable after construction —
/// scaling decisions are pure functions of an `App`, a
/// [`WorkloadVector`] and an interference level, which keeps the controller
/// logic easy to reason about and test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct App {
    name: String,
    microservices: Vec<Microservice>,
    services: Vec<Service>,
}

impl App {
    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of deployed microservices.
    pub fn microservice_count(&self) -> usize {
        self.microservices.len()
    }

    /// Number of online services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Looks up a microservice.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMicroservice`] for a foreign id.
    pub fn microservice(&self, id: MicroserviceId) -> Result<&Microservice> {
        self.microservices
            .get(id.index())
            .ok_or(Error::UnknownMicroservice(id))
    }

    /// Looks up a service.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownService`] for a foreign id.
    pub fn service(&self, id: ServiceId) -> Result<&Service> {
        self.services
            .get(id.index())
            .ok_or(Error::UnknownService(id))
    }

    /// Iterates over `(MicroserviceId, &Microservice)`.
    pub fn microservices(&self) -> impl Iterator<Item = (MicroserviceId, &Microservice)> + '_ {
        self.microservices
            .iter()
            .enumerate()
            .map(|(i, m)| (MicroserviceId::new(i as u32), m))
    }

    /// Iterates over `(ServiceId, &Service)`.
    pub fn services(&self) -> impl Iterator<Item = (ServiceId, &Service)> + '_ {
        self.services
            .iter()
            .enumerate()
            .map(|(i, s)| (ServiceId::new(i as u32), s))
    }

    /// The services whose graphs reference microservice `ms`, in id order.
    pub fn services_using(&self, ms: MicroserviceId) -> Vec<ServiceId> {
        self.services()
            .filter(|(_, s)| s.graph.microservices().contains(&ms))
            .map(|(id, _)| id)
            .collect()
    }

    /// Microservices referenced by two or more services (§2.3), in id order.
    pub fn shared_microservices(&self) -> Vec<MicroserviceId> {
        self.microservices()
            .map(|(id, _)| id)
            .filter(|&id| self.services_using(id).len() >= 2)
            .collect()
    }

    /// Total calls per minute arriving at microservice `ms` under a
    /// workload vector, summed over all services (and over repeat call
    /// sites within one service).
    pub fn microservice_workload(&self, ms: MicroserviceId, workloads: &WorkloadVector) -> f64 {
        self.services()
            .map(|(sid, svc)| workloads.rate(sid).as_per_minute() * svc.graph.calls_per_request(ms))
            .sum()
    }

    /// Finds a microservice id by name (first match).
    pub fn microservice_by_name(&self, name: &str) -> Option<MicroserviceId> {
        self.microservices()
            .find(|(_, m)| m.name == name)
            .map(|(id, _)| id)
    }

    /// Finds a service id by name (first match).
    pub fn service_by_name(&self, name: &str) -> Option<ServiceId> {
        self.services()
            .find(|(_, s)| s.name == name)
            .map(|(id, _)| id)
    }
}

/// Builds and validates an [`App`].
///
/// See the crate-level example. Microservices are declared first; each
/// service is then described by a closure receiving a
/// [`GraphBuilder`].
#[derive(Debug)]
pub struct AppBuilder {
    name: String,
    microservices: Vec<Microservice>,
    services: Vec<Service>,
}

impl AppBuilder {
    /// Starts building an application with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            microservices: Vec::new(),
            services: Vec::new(),
        }
    }

    /// Declares a microservice and returns its id.
    pub fn microservice(
        &mut self,
        name: impl Into<String>,
        profile: LatencyProfile,
        resources: Resources,
    ) -> MicroserviceId {
        let id = MicroserviceId::new(self.microservices.len() as u32);
        self.microservices.push(Microservice {
            name: name.into(),
            profile,
            resources,
        });
        id
    }

    /// Declares an online service whose dependency graph is described by
    /// `build`, and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the closure does not declare an entry node — a service
    /// without a graph is a programming error caught at construction.
    pub fn service(
        &mut self,
        name: impl Into<String>,
        sla: Sla,
        build: impl FnOnce(&mut GraphBuilder),
    ) -> ServiceId {
        let mut builder = GraphBuilder::new();
        build(&mut builder);
        let graph = builder
            .build()
            .expect("service graph must declare an entry node");
        let id = ServiceId::new(self.services.len() as u32);
        self.services.push(Service {
            name: name.into(),
            sla,
            graph,
        });
        id
    }

    /// Declares an online service from a pre-built dependency graph
    /// (useful when graphs come from trace extraction or a generator
    /// rather than the closure DSL).
    pub fn raw_service(
        &mut self,
        name: impl Into<String>,
        sla: Sla,
        graph: DependencyGraph,
    ) -> ServiceId {
        let id = ServiceId::new(self.services.len() as u32);
        self.services.push(Service {
            name: name.into(),
            sla,
            graph,
        });
        id
    }

    /// Peeks at a declared microservice's latency profile while building
    /// (e.g. to compute feasible SLAs for generated services).
    pub fn microservice_profile(&self, id: MicroserviceId) -> Option<&LatencyProfile> {
        self.microservices.get(id.index()).map(|m| &m.profile)
    }

    /// Validates and finalises the application.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownMicroservice`] if a graph references an undeclared
    ///   microservice;
    /// * [`Error::InvalidProfile`] if a latency profile fails validation;
    /// * [`Error::InvalidParameter`] for non-positive multiplicities or
    ///   non-positive SLA thresholds.
    pub fn build(self) -> Result<App> {
        for (i, m) in self.microservices.iter().enumerate() {
            m.profile
                .validate()
                .map_err(|reason| Error::InvalidProfile {
                    microservice: MicroserviceId::new(i as u32),
                    reason,
                })?;
        }
        for svc in &self.services {
            if !(svc.sla.threshold_ms.is_finite() && svc.sla.threshold_ms > 0.0) {
                return Err(Error::InvalidParameter(format!(
                    "service {} has non-positive SLA threshold",
                    svc.name
                )));
            }
            if !(svc.sla.percentile > 0.0 && svc.sla.percentile < 1.0) {
                return Err(Error::InvalidParameter(format!(
                    "service {} has percentile outside (0, 1)",
                    svc.name
                )));
            }
            for (_, node) in svc.graph.iter() {
                if node.microservice.index() >= self.microservices.len() {
                    return Err(Error::UnknownMicroservice(node.microservice));
                }
                if !(node.multiplicity.is_finite() && node.multiplicity > 0.0) {
                    return Err(Error::InvalidParameter(format!(
                        "node in service {} has non-positive multiplicity",
                        svc.name
                    )));
                }
            }
        }
        Ok(App {
            name: self.name,
            microservices: self.microservices,
            services: self.services,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_service_app() -> (App, [MicroserviceId; 3], [ServiceId; 2]) {
        let mut b = AppBuilder::new("demo");
        let u = b.microservice("U", LatencyProfile::linear(0.08, 3.0), Resources::default());
        let h = b.microservice("H", LatencyProfile::linear(0.02, 3.0), Resources::default());
        let p = b.microservice("P", LatencyProfile::linear(0.03, 2.0), Resources::default());
        let s1 = b.service("svc1", Sla::p95_ms(300.0), |g| {
            let root = g.entry(u);
            g.call_seq(root, p);
        });
        let s2 = b.service("svc2", Sla::p95_ms(300.0), |g| {
            let root = g.entry(h);
            g.call_seq(root, p);
        });
        (b.build().unwrap(), [u, h, p], [s1, s2])
    }

    #[test]
    fn shared_microservice_detection() {
        let (app, [u, h, p], [s1, s2]) = two_service_app();
        assert_eq!(app.shared_microservices(), vec![p]);
        assert_eq!(app.services_using(p), vec![s1, s2]);
        assert_eq!(app.services_using(u), vec![s1]);
        assert_eq!(app.services_using(h), vec![s2]);
    }

    #[test]
    fn microservice_workload_aggregates_services() {
        let (app, [_, _, p], [s1, s2]) = two_service_app();
        let mut w = WorkloadVector::new();
        w.set(s1, RequestRate::per_minute(1000.0));
        w.set(s2, RequestRate::per_minute(500.0));
        assert!((app.microservice_workload(p, &w) - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn lookup_by_name() {
        let (app, [u, _, _], [s1, _]) = two_service_app();
        assert_eq!(app.microservice_by_name("U"), Some(u));
        assert_eq!(app.service_by_name("svc1"), Some(s1));
        assert_eq!(app.microservice_by_name("nope"), None);
    }

    #[test]
    fn unknown_ids_error() {
        let (app, _, _) = two_service_app();
        assert!(app.microservice(MicroserviceId::new(99)).is_err());
        assert!(app.service(ServiceId::new(99)).is_err());
    }

    #[test]
    fn build_rejects_bad_sla() {
        let mut b = AppBuilder::new("bad");
        let m = b.microservice("m", LatencyProfile::linear(0.1, 1.0), Resources::default());
        b.service("s", Sla::p95_ms(-1.0), |g| {
            g.entry(m);
        });
        assert!(matches!(b.build(), Err(Error::InvalidParameter(_))));
    }

    #[test]
    fn build_rejects_bad_percentile() {
        let mut b = AppBuilder::new("bad");
        let m = b.microservice("m", LatencyProfile::linear(0.1, 1.0), Resources::default());
        b.service(
            "s",
            Sla {
                percentile: 1.5,
                threshold_ms: 100.0,
            },
            |g| {
                g.entry(m);
            },
        );
        assert!(b.build().is_err());
    }

    #[test]
    fn request_rate_units() {
        let r = RequestRate::per_minute(60_000.0);
        assert!((r.as_per_ms() - 1.0).abs() < 1e-12);
        assert_eq!(RequestRate::per_second(10.0).as_per_minute(), 600.0);
        assert_eq!(r.scaled(0.5).as_per_minute(), 30_000.0);
    }

    #[test]
    fn uniform_workload_covers_all_services() {
        let (app, _, [s1, s2]) = two_service_app();
        let w = WorkloadVector::uniform(&app, RequestRate::per_minute(100.0));
        assert_eq!(w.rate(s1).as_per_minute(), 100.0);
        assert_eq!(w.rate(s2).as_per_minute(), 100.0);
        assert_eq!(w.iter().count(), 2);
    }

    #[test]
    fn workload_from_iterator() {
        let w: WorkloadVector = [(ServiceId::new(0), RequestRate::per_minute(5.0))]
            .into_iter()
            .collect();
        assert_eq!(w.rate(ServiceId::new(0)).as_per_minute(), 5.0);
        assert_eq!(w.rate(ServiceId::new(1)).as_per_minute(), 0.0);
    }
}
