//! Container resource sizes and cluster capacities.

use serde::{Deserialize, Serialize};

/// Resource configuration of one microservice container.
///
/// The paper configures every DeathStarBench container with 0.1 CPU core and
/// 200 MB of memory (§6.1); [`Resources::default`] mirrors that.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Resources {
    /// CPU request, in cores.
    pub cpu: f64,
    /// Memory request, in megabytes.
    pub memory_mb: f64,
}

impl Resources {
    /// Creates a container resource request.
    ///
    /// # Panics
    ///
    /// Panics if either component is not finite and non-negative; container
    /// sizes are configuration constants, so this is a programming error.
    pub fn new(cpu: f64, memory_mb: f64) -> Self {
        assert!(
            cpu.is_finite() && cpu >= 0.0 && memory_mb.is_finite() && memory_mb >= 0.0,
            "container resources must be finite and non-negative"
        );
        Self { cpu, memory_mb }
    }

    /// Dominant-resource demand `R_i = max(cpu/C, mem/M)` of Eq. (3),
    /// normalised by the cluster capacity.
    pub fn dominant_share(&self, capacity: &ClusterCapacity) -> f64 {
        let cpu_share = if capacity.cpu > 0.0 {
            self.cpu / capacity.cpu
        } else {
            0.0
        };
        let mem_share = if capacity.memory_mb > 0.0 {
            self.memory_mb / capacity.memory_mb
        } else {
            0.0
        };
        cpu_share.max(mem_share)
    }
}

impl Default for Resources {
    /// The paper's container shape: 0.1 core, 200 MB (§6.1).
    fn default() -> Self {
        Self {
            cpu: 0.1,
            memory_mb: 200.0,
        }
    }
}

/// Total CPU and memory capacity of the cluster, used to normalise dominant
/// resource demands (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterCapacity {
    /// Total CPU cores.
    pub cpu: f64,
    /// Total memory in megabytes.
    pub memory_mb: f64,
}

impl ClusterCapacity {
    /// Creates a capacity description.
    pub fn new(cpu: f64, memory_mb: f64) -> Self {
        Self { cpu, memory_mb }
    }

    /// The paper's evaluation cluster: 20 hosts × (32 cores, 64 GB) (§6.1).
    pub fn paper_cluster() -> Self {
        Self::new(20.0 * 32.0, 20.0 * 64.0 * 1024.0)
    }
}

impl Default for ClusterCapacity {
    fn default() -> Self {
        Self::paper_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_share_picks_max() {
        let cap = ClusterCapacity::new(100.0, 10_000.0);
        // cpu share = 0.01, mem share = 0.02 -> mem dominates
        let r = Resources::new(1.0, 200.0);
        assert!((r.dominant_share(&cap) - 0.02).abs() < 1e-12);
        // cpu dominates
        let r = Resources::new(5.0, 100.0);
        assert!((r.dominant_share(&cap) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn default_matches_paper_container() {
        let r = Resources::default();
        assert_eq!(r.cpu, 0.1);
        assert_eq!(r.memory_mb, 200.0);
    }

    #[test]
    fn paper_cluster_capacity() {
        let c = ClusterCapacity::paper_cluster();
        assert_eq!(c.cpu, 640.0);
        assert_eq!(c.memory_mb, 20.0 * 64.0 * 1024.0);
    }

    #[test]
    #[should_panic]
    fn negative_cpu_panics() {
        let _ = Resources::new(-1.0, 10.0);
    }

    #[test]
    fn zero_capacity_does_not_divide_by_zero() {
        let cap = ClusterCapacity::new(0.0, 0.0);
        let r = Resources::default();
        assert_eq!(r.dominant_share(&cap), 0.0);
    }
}
