//! Container resource sizes and cluster capacities.

use serde::{Deserialize, Serialize};

/// Resource configuration of one microservice container.
///
/// The paper configures every DeathStarBench container with 0.1 CPU core and
/// 200 MB of memory (§6.1); [`Resources::default`] mirrors that.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Resources {
    /// CPU request, in cores.
    pub cpu: f64,
    /// Memory request, in megabytes.
    pub memory_mb: f64,
}

impl Resources {
    /// Creates a container resource request.
    ///
    /// # Panics
    ///
    /// Panics if either component is not finite and non-negative; container
    /// sizes are configuration constants, so this is a programming error.
    pub fn new(cpu: f64, memory_mb: f64) -> Self {
        assert!(
            cpu.is_finite() && cpu >= 0.0 && memory_mb.is_finite() && memory_mb >= 0.0,
            "container resources must be finite and non-negative"
        );
        Self { cpu, memory_mb }
    }

    /// Dominant-resource demand `R_i = max(cpu/C, mem/M)` of Eq. (3),
    /// normalised by the cluster capacity.
    pub fn dominant_share(&self, capacity: &ClusterCapacity) -> f64 {
        let cpu_share = if capacity.cpu > 0.0 {
            self.cpu / capacity.cpu
        } else {
            0.0
        };
        let mem_share = if capacity.memory_mb > 0.0 {
            self.memory_mb / capacity.memory_mb
        } else {
            0.0
        };
        cpu_share.max(mem_share)
    }
}

impl Default for Resources {
    /// The paper's container shape: 0.1 core, 200 MB (§6.1).
    fn default() -> Self {
        Self {
            cpu: 0.1,
            memory_mb: 200.0,
        }
    }
}

/// Total CPU and memory capacity of the cluster, used to normalise dominant
/// resource demands (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterCapacity {
    /// Total CPU cores.
    pub cpu: f64,
    /// Total memory in megabytes.
    pub memory_mb: f64,
}

impl ClusterCapacity {
    /// Creates a capacity description.
    pub fn new(cpu: f64, memory_mb: f64) -> Self {
        Self { cpu, memory_mb }
    }

    /// The paper's evaluation cluster: 20 hosts × (32 cores, 64 GB) (§6.1).
    pub fn paper_cluster() -> Self {
        Self::new(20.0 * 32.0, 20.0 * 64.0 * 1024.0)
    }
}

impl Default for ClusterCapacity {
    fn default() -> Self {
        Self::paper_cluster()
    }
}

/// A typed host class in a heterogeneous cluster: per-class capacity plus an
/// interference profile.
///
/// The paper's evaluation grid is uniform 32-core/64-GB hosts (§6.1), but the
/// production clusters it targets mix machine generations and sizes. A class
/// carries the knob the placement layer needs beyond raw capacity: an
/// `interference_scale` multiplier on the utilisation-derived interference —
/// large NUMA boxes isolate colocated work better (scale < 1), small or
/// oversubscribed nodes amplify it (scale > 1). `scale = 1.0` reproduces the
/// paper's uniform behaviour exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostClass {
    /// Human-readable class name ("standard", "large", ...).
    pub name: String,
    /// CPU capacity in cores.
    pub cpu: f64,
    /// Memory capacity in megabytes.
    pub memory_mb: f64,
    /// Multiplier applied to utilisation-derived interference on hosts of
    /// this class. 1.0 = the paper's uniform host.
    pub interference_scale: f64,
}

impl HostClass {
    /// Creates a host class.
    ///
    /// # Panics
    ///
    /// Panics if any numeric field is not finite and positive; host classes
    /// are configuration constants, so this is a programming error.
    pub fn new(name: &str, cpu: f64, memory_mb: f64, interference_scale: f64) -> Self {
        assert!(
            cpu.is_finite()
                && cpu > 0.0
                && memory_mb.is_finite()
                && memory_mb > 0.0
                && interference_scale.is_finite()
                && interference_scale > 0.0,
            "host class parameters must be finite and positive"
        );
        Self {
            name: name.to_string(),
            cpu,
            memory_mb,
            interference_scale,
        }
    }

    /// The paper's host shape: 32 cores, 64 GB, neutral interference.
    pub fn standard() -> Self {
        Self::new("standard", 32.0, 64.0 * 1024.0, 1.0)
    }

    /// A large host: 64 cores, 128 GB, slightly better isolation.
    pub fn large() -> Self {
        Self::new("large", 64.0, 128.0 * 1024.0, 0.9)
    }

    /// A small host: 16 cores, 32 GB, noisier neighbours.
    pub fn small() -> Self {
        Self::new("small", 16.0, 32.0 * 1024.0, 1.2)
    }
}

impl Default for HostClass {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_share_picks_max() {
        let cap = ClusterCapacity::new(100.0, 10_000.0);
        // cpu share = 0.01, mem share = 0.02 -> mem dominates
        let r = Resources::new(1.0, 200.0);
        assert!((r.dominant_share(&cap) - 0.02).abs() < 1e-12);
        // cpu dominates
        let r = Resources::new(5.0, 100.0);
        assert!((r.dominant_share(&cap) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn default_matches_paper_container() {
        let r = Resources::default();
        assert_eq!(r.cpu, 0.1);
        assert_eq!(r.memory_mb, 200.0);
    }

    #[test]
    fn paper_cluster_capacity() {
        let c = ClusterCapacity::paper_cluster();
        assert_eq!(c.cpu, 640.0);
        assert_eq!(c.memory_mb, 20.0 * 64.0 * 1024.0);
    }

    #[test]
    #[should_panic]
    fn negative_cpu_panics() {
        let _ = Resources::new(-1.0, 10.0);
    }

    #[test]
    fn zero_capacity_does_not_divide_by_zero() {
        let cap = ClusterCapacity::new(0.0, 0.0);
        let r = Resources::default();
        assert_eq!(r.dominant_share(&cap), 0.0);
    }

    #[test]
    fn standard_class_matches_paper_host() {
        let c = HostClass::standard();
        assert_eq!(c.cpu, 32.0);
        assert_eq!(c.memory_mb, 64.0 * 1024.0);
        assert_eq!(c.interference_scale, 1.0);
    }

    #[test]
    fn class_sizes_are_ordered() {
        assert!(HostClass::small().cpu < HostClass::standard().cpu);
        assert!(HostClass::standard().cpu < HostClass::large().cpu);
        assert!(HostClass::large().interference_scale < HostClass::small().interference_scale);
    }

    #[test]
    #[should_panic]
    fn zero_scale_class_panics() {
        let _ = HostClass::new("bad", 32.0, 1024.0, 0.0);
    }
}
