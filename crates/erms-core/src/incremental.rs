//! Incremental planning: dirty-subtree re-merge and re-distribution over
//! the arena-backed merge trees of [`crate::merge`].
//!
//! [`IncrementalPlanner`] holds the full intermediate state of one
//! [`erms_plan_cached`](crate::manager::erms_plan_cached) run — per-service
//! leaf parameters, merged arenas, per-slot budgets, targets, effective
//! workloads and priority orders — and, on the next round, recomputes only
//! what a change can actually reach. The hard guarantee is that the
//! incremental plan is **bit-identical** to a cold full re-plan: every
//! reuse decision is gated on exact `f64::to_bits` equality of the reused
//! value's inputs, never on provenance prediction.
//!
//! # How dirtiness is detected
//!
//! A [`PlanDelta`] is advisory: it *forces* services/microservices dirty,
//! but the planner additionally recomputes, every round, the
//! planner-visible projection of each input and bit-compares it against
//! the stored copy:
//!
//! * per microservice: both piecewise segments' `(a, b)` at the current
//!   interference, the cutoff, the knee latency and the dominant resource
//!   share — exactly the values the cold planner reads;
//! * per service: the workload rate and the SLA threshold (bits), and the
//!   dependency graph (structural equality; any topology change triggers
//!   a full rebuild).
//!
//! Bit-equal projections imply the cold planner would produce bit-equal
//! output, so skipping is provably safe; a changed projection dirties the
//! owning microservice regardless of what the caller declared.
//!
//! # What is reused
//!
//! Within a dirty service, leaf parameters are recomputed (cheap flops)
//! and bit-compared; only ancestors of changed leaves are re-folded
//! (ascending arena order — the same fold order as a cold build), and the
//! top-down Eq. (5) distribution only descends into subtrees whose
//! incoming budget bits changed or that contain a changed leaf. Across
//! services, the second Latency Target Computation pass is skipped
//! entirely when a service's rate, SLA, profiles and effective workloads
//! are all bit-unchanged.

use std::collections::{BTreeMap, BTreeSet};

use crate::app::{App, Service, WorkloadVector};
use crate::autoscaler::ScalingPlan;
use crate::cache::PlanCache;
use crate::error::{Error, Result};
use crate::graph::DependencyGraph;
use crate::ids::{MicroserviceId, NodeId, ServiceId};
use crate::latency::{Interference, Interval};
use crate::manager::SchedulingMode;
use crate::merge::{ArenaKind, MergedGraph, VirtualParams};
use crate::scaling::{containers_for_profile, EffectiveWorkloads, ScalerConfig, ServicePlan};

/// A set of inputs the caller knows changed since the previous round
/// (workload, profile or SLA edits).
///
/// The delta is a *hint*, not a contract: the planner independently
/// bit-compares every planner-visible input each round, so an
/// under-reported delta cannot produce a stale plan — it only forces
/// *extra* work when over-reported. [`PlanDelta::full`] requests a
/// complete rebuild of the planner state.
///
/// (Not to be confused with [`crate::actions::PlanDelta`], the
/// container-action diff between two finished plans.)
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanDelta {
    full: bool,
    microservices: BTreeSet<MicroserviceId>,
    services: BTreeSet<ServiceId>,
}

impl PlanDelta {
    /// An empty delta: the planner relies purely on its own change
    /// detection.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// A delta requesting a full rebuild of all planner state.
    #[must_use]
    pub fn full() -> Self {
        Self {
            full: true,
            ..Self::default()
        }
    }

    /// Builds a delta from an iterator of changed microservices (e.g. the
    /// re-fitted set of an online profiling round).
    pub fn of_microservices(changed: impl IntoIterator<Item = MicroserviceId>) -> Self {
        Self {
            full: false,
            microservices: changed.into_iter().collect(),
            services: BTreeSet::new(),
        }
    }

    /// Marks a microservice's profile/resources as changed.
    pub fn touch_microservice(&mut self, ms: MicroserviceId) -> &mut Self {
        self.microservices.insert(ms);
        self
    }

    /// Marks a service's SLA/workload as changed (forces both planning
    /// passes for the service).
    pub fn touch_service(&mut self, service: ServiceId) -> &mut Self {
        self.services.insert(service);
        self
    }

    /// Whether this delta requests a full rebuild.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Whether nothing was explicitly touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !self.full && self.microservices.is_empty() && self.services.is_empty()
    }

    /// The explicitly touched microservices.
    #[must_use]
    pub fn microservices(&self) -> &BTreeSet<MicroserviceId> {
        &self.microservices
    }

    /// The explicitly touched services.
    #[must_use]
    pub fn services(&self) -> &BTreeSet<ServiceId> {
        &self.services
    }
}

/// Cumulative work counters of an [`IncrementalPlanner`].
///
/// `services_reused` vs `services_replanned` is the headline ratio: how
/// many second-pass service plans were carried over bit-identically
/// without touching their merge trees.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannerMetrics {
    /// Planning rounds completed.
    pub rounds: u64,
    /// Rounds that rebuilt all state from scratch (first round, topology
    /// change, explicit [`PlanDelta::full`], or recovery after an error).
    pub full_builds: u64,
    /// First-pass (own-workload) per-service solves executed.
    pub initial_replans: u64,
    /// Second-pass per-service solves executed.
    pub services_replanned: u64,
    /// Second-pass per-service solves skipped because every input was
    /// bit-unchanged.
    pub services_reused: u64,
    /// Leaf parameter slots whose recomputed value changed bits.
    pub dirty_leaves: u64,
    /// Arena nodes re-folded (ancestors of dirty leaves).
    pub remerged_nodes: u64,
    /// Arena nodes visited by the incremental top-down distribution.
    pub redistributed_nodes: u64,
    /// Merge arenas built cold (new pass depth or full rebuild).
    pub cold_passes: u64,
    /// Priority re-sorts performed at shared microservices.
    pub priority_resorts: u64,
}

/// Bit-level projection of everything the planner reads from one
/// microservice: low/high segment `(a, b)`, cutoff, knee latency and
/// dominant resource share.
type MsProjection = [u64; 7];

fn project(
    app: &App,
    ms: MicroserviceId,
    itf: Interference,
    config: &ScalerConfig,
) -> MsProjection {
    let m = app.microservice(ms).expect("projected microservice exists");
    let lo = m.profile.params(Interval::Low, itf);
    let hi = m.profile.params(Interval::High, itf);
    [
        lo.a.to_bits(),
        lo.b.to_bits(),
        hi.a.to_bits(),
        hi.b.to_bits(),
        m.profile.cutoff_at(itf).to_bits(),
        m.profile.knee_latency(itf).to_bits(),
        m.resources.dominant_share(&config.capacity).to_bits(),
    ]
}

/// Static (topology-derived) per-service data, computed once per rebuild.
#[derive(Debug, Clone)]
struct ServiceStatics {
    /// Distinct microservices, in graph first-appearance order.
    members: Vec<MicroserviceId>,
    /// Member indices sorted by microservice id (BTreeMap iteration
    /// order of the cold planner's per-member maps).
    members_sorted: Vec<u32>,
    /// `calls_per_request` per member, aligned with `members`.
    calls: Vec<f64>,
    /// Effective multiplicity per graph node.
    mults: Vec<f64>,
    /// Member index of each graph node.
    member_of_node: Vec<u32>,
    /// Call-site node ids per member, ascending.
    member_sites: Vec<Vec<u32>>,
    /// Indices into `PlannerState::shared` for members that are shared.
    shared_members: Vec<u32>,
}

impl ServiceStatics {
    fn build(graph: &DependencyGraph) -> Self {
        let members = graph.microservices();
        let index: BTreeMap<MicroserviceId, u32> = members
            .iter()
            .enumerate()
            .map(|(i, &ms)| (ms, i as u32))
            .collect();
        let calls = members
            .iter()
            .map(|&ms| graph.calls_per_request(ms))
            .collect();
        let mults = graph.effective_multiplicities();
        let mut member_of_node = Vec::with_capacity(graph.len());
        let mut member_sites = vec![Vec::new(); members.len()];
        for (id, node) in graph.iter() {
            let mi = index[&node.microservice];
            member_of_node.push(mi);
            member_sites[mi as usize].push(id.index() as u32);
        }
        let mut members_sorted: Vec<u32> = (0..members.len() as u32).collect();
        members_sorted.sort_unstable_by_key(|&mi| members[mi as usize]);
        Self {
            members,
            members_sorted,
            calls,
            mults,
            member_of_node,
            member_sites,
            shared_members: Vec::new(),
        }
    }
}

/// One Latency Target Computation pass of one service, kept internally
/// consistent: `budgets`/`node_targets`/`ms_targets` are always exactly
/// what a full distribution over `arena`'s current parameters produces.
#[derive(Debug, Clone)]
struct PassState {
    leaf_params: Vec<VirtualParams>,
    arena: MergedGraph,
    budgets: Vec<f64>,
    node_targets: Vec<f64>,
    /// Per-member minimum per-call target, aligned with
    /// `ServiceStatics::members`.
    ms_targets: Vec<f64>,
}

/// Reusable scratch of one solver (no allocations on the warm path).
#[derive(Debug, Clone, Default)]
struct Scratch {
    params: Vec<VirtualParams>,
    frontier: Vec<u32>,
    subtree_stamp: Vec<u64>,
    budget_stamp: Vec<u64>,
    member_stamp: Vec<u64>,
    stamp: u64,
}

/// The per-service incremental solver mirroring
/// [`plan_service_cached`](crate::scaling::plan_service_cached).
#[derive(Debug, Clone, Default)]
struct Solver {
    passes: Vec<PassState>,
    final_pass: usize,
    idle: bool,
    intervals: Vec<Interval>,
    scratch: Scratch,
}

/// Shared-microservice priority bookkeeping.
#[derive(Debug, Clone)]
struct SharedState {
    ms: MicroserviceId,
    /// `app.services_using(ms)` — the unsorted id-order user list the
    /// cold sort starts from.
    users: Vec<ServiceId>,
    /// Current priority order (lower initial target first).
    order: Vec<ServiceId>,
}

#[derive(Debug, Clone)]
struct ServiceEntry {
    statics: ServiceStatics,
    initial: Solver,
    final_: Solver,
}

/// Everything carried between rounds.
#[derive(Debug, Clone)]
struct PlannerState {
    graphs: Vec<DependencyGraph>,
    services: Vec<ServiceEntry>,
    calls_maps: Vec<BTreeMap<MicroserviceId, f64>>,
    own_effs: Vec<EffectiveWorkloads>,
    final_effs: Vec<EffectiveWorkloads>,
    initial_plans: BTreeMap<ServiceId, ServicePlan>,
    shared: Vec<SharedState>,
    shared_of: Vec<Option<u32>>,
    plan: ScalingPlan,
    // Stored projections (updated in place each round).
    rates: Vec<f64>,
    sla_bits: Vec<u64>,
    ms_proj: Vec<MsProjection>,
    // Per-round flags (reused).
    rate_changed: Vec<bool>,
    sla_changed: Vec<bool>,
    ms_dirty: Vec<bool>,
    member_dirty: Vec<bool>,
    initial_changed: Vec<bool>,
    order_changed: Vec<bool>,
    eff_cand: Vec<bool>,
    demand: Vec<f64>,
    demand_set: Vec<bool>,
    sort_scratch: Vec<ServiceId>,
}

/// Immutable planning context threaded through the solver helpers.
struct Ctx<'a> {
    app: &'a App,
    itf: Interference,
    config: &'a ScalerConfig,
    cache: Option<&'a PlanCache>,
}

/// One service's round inputs.
struct SvcView<'a> {
    sid: ServiceId,
    svc: &'a Service,
    rate: f64,
    eff: &'a EffectiveWorkloads,
}

/// An incremental Erms planner producing plans bit-identical to
/// [`erms_plan_cached`](crate::manager::erms_plan_cached) while only
/// recomputing what changed since the previous round.
///
/// ```
/// use erms_core::app::{AppBuilder, RequestRate, Sla, WorkloadVector};
/// use erms_core::incremental::{IncrementalPlanner, PlanDelta};
/// use erms_core::latency::{Interference, LatencyProfile};
/// use erms_core::manager::{erms_plan, SchedulingMode};
/// use erms_core::resources::Resources;
/// use erms_core::scaling::ScalerConfig;
///
/// let mut b = AppBuilder::new("demo");
/// let m = b.microservice("m", LatencyProfile::linear(0.05, 4.0), Resources::default());
/// let s = b.service("s", Sla::p95_ms(200.0), |g| {
///     g.entry(m);
/// });
/// let app = b.build().unwrap();
/// let itf = Interference::default();
/// let mut w = WorkloadVector::new();
/// w.set(s, RequestRate::per_minute(10_000.0));
///
/// let mut planner = IncrementalPlanner::new(ScalerConfig::default(), SchedulingMode::Priority);
/// let warm = planner.replan(&app, &w, itf, &PlanDelta::empty(), None).unwrap().clone();
/// let cold = erms_plan(&app, &w, itf, &ScalerConfig::default(), SchedulingMode::Priority).unwrap();
/// assert_eq!(warm, cold);
///
/// w.set(s, RequestRate::per_minute(12_000.0));
/// let warm = planner.replan(&app, &w, itf, &PlanDelta::empty(), None).unwrap().clone();
/// let cold = erms_plan(&app, &w, itf, &ScalerConfig::default(), SchedulingMode::Priority).unwrap();
/// assert_eq!(warm, cold);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalPlanner {
    config: ScalerConfig,
    mode: SchedulingMode,
    metrics: PlannerMetrics,
    state: Option<PlannerState>,
}

impl Default for IncrementalPlanner {
    fn default() -> Self {
        Self::new(ScalerConfig::default(), SchedulingMode::Priority)
    }
}

impl IncrementalPlanner {
    /// Creates a planner with the given configuration and scheduling
    /// mode. No state is built until the first [`replan`](Self::replan).
    #[must_use]
    pub fn new(config: ScalerConfig, mode: SchedulingMode) -> Self {
        Self {
            config,
            mode,
            metrics: PlannerMetrics::default(),
            state: None,
        }
    }

    /// The scaler configuration in force.
    #[must_use]
    pub fn config(&self) -> &ScalerConfig {
        &self.config
    }

    /// The scheduling mode in force.
    #[must_use]
    pub fn mode(&self) -> SchedulingMode {
        self.mode
    }

    /// Work counters accumulated so far.
    #[must_use]
    pub fn metrics(&self) -> PlannerMetrics {
        self.metrics
    }

    /// The most recent plan, if any round has completed.
    #[must_use]
    pub fn plan(&self) -> Option<&ScalingPlan> {
        self.state.as_ref().map(|s| &s.plan)
    }

    /// Drops all carried state; the next round rebuilds from scratch.
    pub fn invalidate(&mut self) {
        self.state = None;
    }

    /// Adopts a (possibly different) configuration/mode, invalidating the
    /// carried state when either differs from what the state was built
    /// under.
    pub fn ensure_config(&mut self, config: &ScalerConfig, mode: SchedulingMode) {
        if self.config != *config || self.mode != mode {
            self.config = config.clone();
            self.mode = mode;
            self.state = None;
        }
    }

    /// Re-plans with pure self-detection of changes (an empty
    /// [`PlanDelta`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`replan`](Self::replan).
    pub fn replan_auto(
        &mut self,
        app: &App,
        workloads: &WorkloadVector,
        itf: Interference,
        cache: Option<&PlanCache>,
    ) -> Result<&ScalingPlan> {
        self.replan(app, workloads, itf, &PlanDelta::empty(), cache)
    }

    /// Computes the plan for the current inputs, reusing every piece of
    /// the previous round whose inputs are bit-unchanged. The result is
    /// bit-identical to
    /// [`erms_plan_cached`](crate::manager::erms_plan_cached) on the same
    /// inputs.
    ///
    /// On any planning error the carried state is dropped (the next call
    /// rebuilds cold), and the same error the cold planner would produce
    /// is returned.
    ///
    /// # Errors
    ///
    /// * [`Error::SlaInfeasible`] when a service's SLA is below its
    ///   latency floor;
    /// * [`Error::EmptyGraph`] for services without call nodes.
    pub fn replan(
        &mut self,
        app: &App,
        workloads: &WorkloadVector,
        itf: Interference,
        delta: &PlanDelta,
        cache: Option<&PlanCache>,
    ) -> Result<&ScalingPlan> {
        let fresh = match &self.state {
            None => true,
            Some(state) => delta.is_full() || !signature_matches(state, app),
        };
        let ctx = Ctx {
            app,
            itf,
            config: &self.config,
            cache,
        };
        if fresh {
            self.metrics.full_builds += 1;
            self.state = None;
            let mut state = build_skeleton(app, self.mode)?;
            run_round(
                &mut state,
                &ctx,
                workloads,
                delta,
                true,
                self.mode,
                &mut self.metrics,
            )?;
            self.state = Some(state);
        } else {
            let state = self.state.as_mut().expect("warm state");
            if let Err(err) = run_round(
                state,
                &ctx,
                workloads,
                delta,
                false,
                self.mode,
                &mut self.metrics,
            ) {
                self.state = None;
                return Err(err);
            }
        }
        self.metrics.rounds += 1;
        Ok(&self.state.as_ref().expect("state after round").plan)
    }
}

/// Whether the carried state still describes this app's topology.
fn signature_matches(state: &PlannerState, app: &App) -> bool {
    if state.graphs.len() != app.service_count() || state.ms_proj.len() != app.microservice_count()
    {
        return false;
    }
    app.services()
        .all(|(sid, svc)| state.graphs[sid.index()] == svc.graph)
}

fn build_skeleton(app: &App, mode: SchedulingMode) -> Result<PlannerState> {
    let nsvc = app.service_count();
    let nms = app.microservice_count();
    let mut plan = ScalingPlan::new(match mode {
        SchedulingMode::Priority => "erms",
        SchedulingMode::Fcfs => "erms-fcfs",
    });
    let mut initial_plans = BTreeMap::new();
    let mut services = Vec::with_capacity(nsvc);
    let mut calls_maps = Vec::with_capacity(nsvc);
    let mut graphs = Vec::with_capacity(nsvc);
    for (sid, svc) in app.services() {
        let skeleton = ServicePlan::idle(app, sid)?;
        initial_plans.insert(sid, skeleton.clone());
        plan.set_service_plan(skeleton);
        let statics = ServiceStatics::build(&svc.graph);
        calls_maps.push(
            statics
                .members
                .iter()
                .copied()
                .zip(statics.calls.iter().copied())
                .collect(),
        );
        graphs.push(svc.graph.clone());
        services.push(ServiceEntry {
            statics,
            initial: Solver::default(),
            final_: Solver::default(),
        });
    }
    let mut shared = Vec::new();
    let mut shared_of = vec![None; nms];
    for ms in app.shared_microservices() {
        let users = app.services_using(ms);
        shared_of[ms.index()] = Some(shared.len() as u32);
        shared.push(SharedState {
            ms,
            order: users.clone(),
            users,
        });
    }
    for entry in &mut services {
        for &ms in &entry.statics.members {
            if let Some(si) = shared_of[ms.index()] {
                entry.statics.shared_members.push(si);
            }
        }
    }
    Ok(PlannerState {
        graphs,
        services,
        calls_maps,
        own_effs: vec![EffectiveWorkloads::new(); nsvc],
        final_effs: vec![EffectiveWorkloads::new(); nsvc],
        initial_plans,
        shared_of,
        order_changed: vec![false; shared.len()],
        shared,
        plan,
        rates: vec![0.0; nsvc],
        sla_bits: vec![0; nsvc],
        ms_proj: vec![[0; 7]; nms],
        rate_changed: vec![false; nsvc],
        sla_changed: vec![false; nsvc],
        ms_dirty: vec![false; nms],
        member_dirty: vec![false; nsvc],
        initial_changed: vec![false; nsvc],
        eff_cand: vec![false; nsvc],
        demand: vec![0.0; nms],
        demand_set: vec![false; nms],
        sort_scratch: Vec::new(),
    })
}

#[allow(clippy::too_many_arguments)]
fn run_round(
    state: &mut PlannerState,
    ctx: &Ctx<'_>,
    workloads: &WorkloadVector,
    delta: &PlanDelta,
    fresh: bool,
    mode: SchedulingMode,
    metrics: &mut PlannerMetrics,
) -> Result<()> {
    let nsvc = state.services.len();
    detect_changes(state, ctx, workloads, delta, fresh);

    // ---- Pass 1: per-service targets under own workloads.
    for sid_idx in 0..nsvc {
        let member_dirty = state.services[sid_idx]
            .statics
            .members
            .iter()
            .any(|ms| state.ms_dirty[ms.index()]);
        state.member_dirty[sid_idx] = member_dirty;
        state.initial_changed[sid_idx] = false;
        if !(state.rate_changed[sid_idx] || state.sla_changed[sid_idx] || member_dirty) {
            continue;
        }
        let sid = ServiceId::new(sid_idx as u32);
        let svc = ctx.app.service(sid)?;
        if state.rate_changed[sid_idx] {
            update_own_eff(
                &mut state.own_effs[sid_idx],
                &state.services[sid_idx].statics,
                state.rates[sid_idx],
            );
        }
        let view = SvcView {
            sid,
            svc,
            rate: state.rates[sid_idx],
            eff: &state.own_effs[sid_idx],
        };
        let entry = &mut state.services[sid_idx];
        let sp = state.initial_plans.get_mut(&sid).expect("initial skeleton");
        metrics.initial_replans += 1;
        state.initial_changed[sid_idx] =
            replan_solver(&mut entry.initial, &entry.statics, ctx, &view, sp, metrics)?;
    }

    // ---- Priority assignment at shared microservices (§5.3.2).
    if matches!(mode, SchedulingMode::Priority) {
        for si in 0..state.shared.len() {
            state.order_changed[si] = false;
            let need = fresh
                || state.shared[si]
                    .users
                    .iter()
                    .any(|u| state.initial_changed[u.index()]);
            if !need {
                continue;
            }
            metrics.priority_resorts += 1;
            let ms = state.shared[si].ms;
            state.sort_scratch.clear();
            state
                .sort_scratch
                .extend_from_slice(&state.shared[si].users);
            sort_by_initial_target(&mut state.sort_scratch, &state.initial_plans, ms);
            if fresh || state.sort_scratch != state.shared[si].order {
                let sh = &mut state.shared[si];
                sh.order.clear();
                sh.order.extend_from_slice(&state.sort_scratch);
                state.order_changed[si] = true;
                state.plan.set_priority_order(ms, sh.order.clone());
            }
        }
    }

    // ---- Effective-workload candidates: services whose second-pass
    // workloads can have moved (own rate, a sharing peer's rate, or a
    // changed priority order).
    for flag in &mut state.eff_cand {
        *flag = false;
    }
    if fresh {
        for flag in &mut state.eff_cand {
            *flag = true;
        }
    } else {
        for sid_idx in 0..nsvc {
            if !state.rate_changed[sid_idx] {
                continue;
            }
            state.eff_cand[sid_idx] = true;
            for &si in &state.services[sid_idx].statics.shared_members {
                for user in &state.shared[si as usize].users {
                    state.eff_cand[user.index()] = true;
                }
            }
        }
        for si in 0..state.shared.len() {
            if state.order_changed[si] {
                for user in &state.shared[si].users {
                    state.eff_cand[user.index()] = true;
                }
            }
        }
    }

    // ---- Pass 2: targets and container demands under modified
    // workloads.
    let mut any_final_changed = fresh;
    for sid_idx in 0..nsvc {
        let sid = ServiceId::new(sid_idx as u32);
        let mut eff_changed = false;
        if state.eff_cand[sid_idx] {
            eff_changed = update_final_eff(
                &mut state.final_effs[sid_idx],
                &state.services[sid_idx].statics,
                sid,
                &state.rates,
                &state.calls_maps,
                &state.shared,
                &state.shared_of,
                mode,
            );
        }
        let need = fresh
            || state.rate_changed[sid_idx]
            || state.sla_changed[sid_idx]
            || state.member_dirty[sid_idx]
            || eff_changed;
        if !need {
            metrics.services_reused += 1;
            continue;
        }
        metrics.services_replanned += 1;
        let svc = ctx.app.service(sid)?;
        let view = SvcView {
            sid,
            svc,
            rate: state.rates[sid_idx],
            eff: &state.final_effs[sid_idx],
        };
        let entry = &mut state.services[sid_idx];
        let sp = state
            .plan
            .service_plan_mut(sid)
            .expect("service-plan skeleton");
        any_final_changed |=
            replan_solver(&mut entry.final_, &entry.statics, ctx, &view, sp, metrics)?;
    }

    // ---- Max container demand per microservice, rounded up (§7).
    if any_final_changed {
        for flag in &mut state.demand_set {
            *flag = false;
        }
        for sid_idx in 0..nsvc {
            let sp = state
                .plan
                .service_plan(ServiceId::new(sid_idx as u32))
                .expect("service plan");
            for (&ms, &n) in &sp.ms_containers {
                let i = ms.index();
                if state.demand_set[i] {
                    let d = state.demand[i];
                    state.demand[i] = d.max(n);
                } else {
                    state.demand[i] = n;
                    state.demand_set[i] = true;
                }
            }
        }
        for i in 0..state.demand.len() {
            if !state.demand_set[i] {
                continue;
            }
            let n = state.demand[i];
            let count = if n <= 0.0 {
                0
            } else {
                n.ceil().max(1.0) as u32
            };
            let ms = MicroserviceId::new(i as u32);
            if state.plan.get(ms) != Some(count) {
                state.plan.set_containers(ms, count);
            }
        }
    }
    Ok(())
}

/// Updates stored input projections in place and flags what changed bits.
fn detect_changes(
    state: &mut PlannerState,
    ctx: &Ctx<'_>,
    workloads: &WorkloadVector,
    delta: &PlanDelta,
    fresh: bool,
) {
    let mut nonfinite = false;
    for sid_idx in 0..state.services.len() {
        let new = workloads
            .rate(ServiceId::new(sid_idx as u32))
            .as_per_minute();
        let old = state.rates[sid_idx];
        let changed = fresh || new.to_bits() != old.to_bits();
        if changed && !(new.is_finite() && old.is_finite()) {
            // A non-finite rate multiplied into another service's zero
            // call count is NaN, not zero — the sparse peer-marking below
            // would be unsound, so dirty every service.
            nonfinite = true;
        }
        state.rates[sid_idx] = new;
        state.rate_changed[sid_idx] = changed;
    }
    if nonfinite {
        for flag in &mut state.rate_changed {
            *flag = true;
        }
    }
    for (ms, _) in ctx.app.microservices() {
        let proj = project(ctx.app, ms, ctx.itf, ctx.config);
        let i = ms.index();
        state.ms_dirty[i] = fresh || proj != state.ms_proj[i];
        state.ms_proj[i] = proj;
    }
    for &ms in delta.microservices() {
        if ms.index() < state.ms_dirty.len() {
            state.ms_dirty[ms.index()] = true;
        }
    }
    for (sid, svc) in ctx.app.services() {
        let bits = svc.sla.threshold_ms.to_bits();
        let i = sid.index();
        state.sla_changed[i] = fresh || bits != state.sla_bits[i];
        state.sla_bits[i] = bits;
    }
    for &sid in delta.services() {
        if sid.index() < state.sla_changed.len() {
            state.sla_changed[sid.index()] = true;
        }
    }
}

/// In-place [`crate::scaling::own_workloads`] (same products, stored
/// call counts).
fn update_own_eff(eff: &mut EffectiveWorkloads, st: &ServiceStatics, rate: f64) {
    for (mi, &ms) in st.members.iter().enumerate() {
        let value = rate * st.calls[mi];
        eff.insert(ms, value);
    }
}

/// In-place [`crate::multiplexing::cumulative_workloads`] /
/// [`crate::multiplexing::total_workloads`], returning whether any value
/// changed bits.
#[allow(clippy::too_many_arguments)]
fn update_final_eff(
    eff: &mut EffectiveWorkloads,
    st: &ServiceStatics,
    sid: ServiceId,
    rates: &[f64],
    calls_maps: &[BTreeMap<MicroserviceId, f64>],
    shared: &[SharedState],
    shared_of: &[Option<u32>],
    mode: SchedulingMode,
) -> bool {
    let own_rate = rates[sid.index()];
    let mut changed = false;
    for (mi, &ms) in st.members.iter().enumerate() {
        let value = match mode {
            SchedulingMode::Priority => {
                let own = own_rate * st.calls[mi];
                match shared_of[ms.index()] {
                    Some(si) => {
                        // Sum over services ordered before (and
                        // including) this one, in priority order.
                        let mut acc = 0.0;
                        for &other in &shared[si as usize].order {
                            acc += rates[other.index()]
                                * calls_maps[other.index()].get(&ms).copied().unwrap_or(0.0);
                            if other == sid {
                                break;
                            }
                        }
                        acc
                    }
                    None => own,
                }
            }
            SchedulingMode::Fcfs => {
                // Total over all services in id order, including the
                // zero terms of non-users (`microservice_workload`).
                let mut acc = 0.0;
                for (other_idx, &rate) in rates.iter().enumerate() {
                    acc += rate * calls_maps[other_idx].get(&ms).copied().unwrap_or(0.0);
                }
                acc
            }
        };
        match eff.get_mut(&ms) {
            Some(slot) => {
                if slot.to_bits() != value.to_bits() {
                    *slot = value;
                    changed = true;
                }
            }
            None => {
                eff.insert(ms, value);
                changed = true;
            }
        }
    }
    changed
}

/// Stable insertion sort with the cold planner's comparator (lower
/// initial target first, service id tiebreak). A stable sort's output is
/// unique, so this matches `slice::sort_by` bit-for-bit without its
/// allocation.
fn sort_by_initial_target(
    users: &mut [ServiceId],
    initial_plans: &BTreeMap<ServiceId, ServicePlan>,
    ms: MicroserviceId,
) {
    let target = |sid: ServiceId| -> f64 {
        initial_plans
            .get(&sid)
            .and_then(|p| p.ms_targets_ms.get(&ms))
            .copied()
            .unwrap_or(f64::INFINITY)
    };
    for i in 1..users.len() {
        let mut j = i;
        while j > 0 {
            let (x, y) = (users[j - 1], users[j]);
            let before = target(x)
                .partial_cmp(&target(y))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.cmp(&y));
            if before == std::cmp::Ordering::Greater {
                users.swap(j - 1, j);
                j -= 1;
            } else {
                break;
            }
        }
    }
}

/// Incremental mirror of
/// [`plan_service_cached`](crate::scaling::plan_service_cached): same
/// control flow, with each pass's merge and distribution updated
/// diff-wise. Writes the outcome into `sp` field-by-field (bit compares)
/// and reports whether anything changed.
fn replan_solver(
    solver: &mut Solver,
    st: &ServiceStatics,
    ctx: &Ctx<'_>,
    view: &SvcView<'_>,
    sp: &mut ServicePlan,
    metrics: &mut PlannerMetrics,
) -> Result<bool> {
    let svc = view.svc;
    if svc.graph.is_empty() {
        return Err(Error::EmptyGraph { service: view.sid });
    }
    let gamma_svc = view.rate;
    if gamma_svc <= 0.0 {
        solver.idle = true;
        return Ok(write_idle_plan(sp, st, svc));
    }
    solver.idle = false;

    let initial_iv = ctx.config.interval_override.unwrap_or(Interval::High);
    solver.intervals.clear();
    solver.intervals.resize(st.members.len(), initial_iv);
    if solver.scratch.member_stamp.len() < st.members.len() {
        solver.scratch.member_stamp.resize(st.members.len(), 0);
    }

    let mut pass = 0usize;
    loop {
        compute_leaf_params(solver, st, ctx, view, gamma_svc)?;
        if pass >= solver.passes.len() {
            build_pass_cold(solver, st, ctx, view, metrics)?;
        } else {
            update_pass(solver, pass, st, view, metrics)?;
        }

        // §5.3.1 interval check, in microservice-id order (the cold
        // planner iterates its per-member BTreeMap).
        let ps = &solver.passes[pass];
        let mut changed = false;
        if ctx.config.interval_override.is_none() && pass < ctx.config.interval_recomputations {
            for &mi in &st.members_sorted {
                let mi = mi as usize;
                if solver.intervals[mi] == Interval::High {
                    let ms = st.members[mi];
                    let knee = ctx.app.microservice(ms)?.profile.knee_latency(ctx.itf);
                    if ps.ms_targets[mi] < knee {
                        solver.intervals[mi] = Interval::Low;
                        changed = true;
                    }
                }
            }
        }
        if changed {
            pass += 1;
            continue;
        }
        solver.final_pass = pass;
        break;
    }
    write_active_plan(sp, solver, st, ctx, view, gamma_svc)
}

/// Recomputes the folded per-node parameters into the solver scratch —
/// the exact expression sequence of the cold planner's per-pass loop.
fn compute_leaf_params(
    solver: &mut Solver,
    st: &ServiceStatics,
    ctx: &Ctx<'_>,
    view: &SvcView<'_>,
    gamma_svc: f64,
) -> Result<()> {
    solver.scratch.params.clear();
    for (id, node) in view.svc.graph.iter() {
        let ms = node.microservice;
        let m = ctx.app.microservice(ms)?;
        let mi = st.member_of_node[id.index()] as usize;
        let p = m.profile.params(solver.intervals[mi], ctx.itf);
        let gamma_eff = view
            .eff
            .get(&ms)
            .copied()
            .unwrap_or_else(|| gamma_svc * st.calls[mi]);
        let mult = st.mults[id.index()];
        let a_fold = p.a * mult * (gamma_eff / gamma_svc);
        solver.scratch.params.push(VirtualParams::new(
            a_fold,
            p.b * mult,
            m.resources.dominant_share(&ctx.config.capacity),
        ));
    }
    Ok(())
}

/// Builds the next pass cold: full merge (via the [`PlanCache`] when
/// present) and full distribution.
fn build_pass_cold(
    solver: &mut Solver,
    st: &ServiceStatics,
    ctx: &Ctx<'_>,
    view: &SvcView<'_>,
    metrics: &mut PlannerMetrics,
) -> Result<()> {
    metrics.cold_passes += 1;
    let leaf_params = solver.scratch.params.clone();
    let arena = match ctx.cache {
        Some(cache) => (*cache.merged(&view.svc.graph, &leaf_params)).clone(),
        None => MergedGraph::merge(&view.svc.graph, &leaf_params),
    };
    let sla_ms = view.svc.sla.threshold_ms;
    let floor = arena.floor_ms();
    if !(sla_ms.is_finite() && sla_ms > floor) {
        return Err(Error::SlaInfeasible {
            service: view.sid,
            sla_ms,
            floor_ms: floor,
        });
    }
    let mut budgets = vec![0.0f64; arena.arena_len()];
    let mut node_targets = vec![f64::NAN; view.svc.graph.len()];
    arena.distribute_all(sla_ms, &mut budgets, &mut node_targets);
    let alen = arena.arena_len();
    if solver.scratch.subtree_stamp.len() < alen {
        solver.scratch.subtree_stamp.resize(alen, 0);
        solver.scratch.budget_stamp.resize(alen, 0);
    }
    let mut ps = PassState {
        leaf_params,
        arena,
        budgets,
        node_targets,
        ms_targets: Vec::new(),
    };
    ps.ms_targets = st
        .member_sites
        .iter()
        .map(|sites| member_min_target(&ps, st, sites))
        .collect();
    solver.passes.push(ps);
    Ok(())
}

/// Diff-driven update of an existing pass: bit-compare recomputed leaf
/// params, re-fold only ancestors of dirty leaves (ascending arena
/// order), re-distribute only where budgets or parameters changed bits.
fn update_pass(
    solver: &mut Solver,
    pass: usize,
    st: &ServiceStatics,
    view: &SvcView<'_>,
    metrics: &mut PlannerMetrics,
) -> Result<()> {
    let sc = &mut solver.scratch;
    let ps = &mut solver.passes[pass];
    sc.stamp += 1;
    let stamp = sc.stamp;
    let arena = &mut ps.arena;

    // 1. Leaf diffs + ancestor set.
    sc.frontier.clear();
    for node_idx in 0..ps.leaf_params.len() {
        let newp = sc.params[node_idx];
        if newp.bits_eq(&ps.leaf_params[node_idx]) {
            continue;
        }
        metrics.dirty_leaves += 1;
        ps.leaf_params[node_idx] = newp;
        let node = NodeId::new(node_idx as u32);
        arena.set_leaf_params(node, newp);
        let leaf = arena.leaf_index(node);
        sc.subtree_stamp[leaf] = stamp;
        let mut cur = leaf;
        while let Some(parent) = arena.parent_of(cur) {
            if sc.subtree_stamp[parent] == stamp {
                break;
            }
            sc.subtree_stamp[parent] = stamp;
            sc.frontier.push(parent as u32);
            cur = parent;
        }
    }
    if !sc.frontier.is_empty() {
        // Ascending arena order = children before parents (post-order).
        sc.frontier.sort_unstable();
        for &i in &sc.frontier {
            arena.refold(i as usize);
        }
        metrics.remerged_nodes += sc.frontier.len() as u64;
    }

    // 2. Feasibility against the (possibly re-folded) root.
    let sla_ms = view.svc.sla.threshold_ms;
    let floor = arena.floor_ms();
    if !(sla_ms.is_finite() && sla_ms > floor) {
        return Err(Error::SlaInfeasible {
            service: view.sid,
            sla_ms,
            floor_ms: floor,
        });
    }

    // 3. Top-down distribution, skipping clean subtrees wholesale. A
    //    subtree is clean when its incoming budget bits are unchanged and
    //    no leaf inside changed — every stored value within is then the
    //    output of the same computation on bit-equal inputs.
    let root = arena.root_index();
    if ps.budgets[root].to_bits() != sla_ms.to_bits() {
        ps.budgets[root] = sla_ms;
        sc.budget_stamp[root] = stamp;
    }
    let mut i = root as isize;
    while i >= 0 {
        let idx = i as usize;
        if sc.budget_stamp[idx] != stamp && sc.subtree_stamp[idx] != stamp {
            i -= arena.subtree_size(idx) as isize;
            continue;
        }
        metrics.redistributed_nodes += 1;
        let budget = ps.budgets[idx];
        match arena.kind(idx) {
            ArenaKind::Leaf(node) => {
                if ps.node_targets[node.index()].to_bits() != budget.to_bits() {
                    ps.node_targets[node.index()] = budget;
                    sc.member_stamp[st.member_of_node[node.index()] as usize] = stamp;
                }
            }
            ArenaKind::Parallel => {
                for &c in arena.children_of(idx) {
                    let c = c as usize;
                    if ps.budgets[c].to_bits() != budget.to_bits() {
                        ps.budgets[c] = budget;
                        sc.budget_stamp[c] = stamp;
                    }
                }
            }
            ArenaKind::Sequential => {
                let totals = arena.seq_totals(idx);
                for &c in arena.children_of(idx) {
                    let c = c as usize;
                    let nb = arena.seq_child_budget(c, budget, totals);
                    if ps.budgets[c].to_bits() != nb.to_bits() {
                        ps.budgets[c] = nb;
                        sc.budget_stamp[c] = stamp;
                    }
                }
            }
        }
        i -= 1;
    }

    // 4. Per-member minima, only for members with a changed site target.
    for (mi, sites) in st.member_sites.iter().enumerate() {
        if sc.member_stamp[mi] != stamp {
            continue;
        }
        ps.ms_targets[mi] = member_min_target(ps, st, sites);
    }
    Ok(())
}

/// The cold planner's per-member fold: first site's per-call target, then
/// `min` with each later site in node-id order.
fn member_min_target(ps: &PassState, st: &ServiceStatics, sites: &[u32]) -> f64 {
    let per_call = |site: u32| {
        let i = site as usize;
        ps.node_targets[i] / st.mults[i]
    };
    let mut acc = per_call(sites[0]);
    for &site in &sites[1..] {
        acc = acc.min(per_call(site));
    }
    acc
}

/// Writes the idle (zero-workload) plan values, mirroring
/// `ServicePlan::idle`, and reports whether anything changed.
fn write_idle_plan(sp: &mut ServicePlan, st: &ServiceStatics, svc: &Service) -> bool {
    let sla = svc.sla.threshold_ms;
    let mut changed = false;
    for slot in &mut sp.node_targets_ms {
        if slot.to_bits() != sla.to_bits() {
            *slot = sla;
            changed = true;
        }
    }
    for &ms in &st.members {
        changed |= write_f64(sp.ms_targets_ms.get_mut(&ms), sla);
        changed |= write_f64(sp.ms_containers.get_mut(&ms), 0.0);
        let iv = sp.ms_intervals.get_mut(&ms).expect("interval slot");
        if *iv != Interval::Low {
            *iv = Interval::Low;
            changed = true;
        }
    }
    changed
}

fn write_f64(slot: Option<&mut f64>, value: f64) -> bool {
    let slot = slot.expect("plan slot");
    if slot.to_bits() != value.to_bits() {
        *slot = value;
        return true;
    }
    false
}

/// Copies the final pass into the stored [`ServicePlan`] field-by-field
/// (bit compares), recomputing container demands from the final targets
/// exactly as the cold planner does.
fn write_active_plan(
    sp: &mut ServicePlan,
    solver: &Solver,
    st: &ServiceStatics,
    ctx: &Ctx<'_>,
    view: &SvcView<'_>,
    gamma_svc: f64,
) -> Result<bool> {
    let ps = &solver.passes[solver.final_pass];
    let mut changed = false;
    for (slot, &target) in sp.node_targets_ms.iter_mut().zip(&ps.node_targets) {
        if slot.to_bits() != target.to_bits() {
            *slot = target;
            changed = true;
        }
    }
    for (mi, &ms) in st.members.iter().enumerate() {
        let target = ps.ms_targets[mi];
        changed |= write_f64(sp.ms_targets_ms.get_mut(&ms), target);
        let iv = solver.intervals[mi];
        let slot = sp.ms_intervals.get_mut(&ms).expect("interval slot");
        if *slot != iv {
            *slot = iv;
            changed = true;
        }
        let m = ctx.app.microservice(ms)?;
        let gamma_eff = view
            .eff
            .get(&ms)
            .copied()
            .unwrap_or_else(|| gamma_svc * st.calls[mi]);
        let n = containers_for_profile(&m.profile, iv, ctx.itf, gamma_eff, target);
        changed |= write_f64(sp.ms_containers.get_mut(&ms), n);
    }
    Ok(changed)
}
