//! The piecewise-linear microservice tail-latency model (§2.2, §5.2).
//!
//! Erms models the tail (e.g. P95) latency of a microservice as a
//! *piecewise-linear* function of its per-container workload γ (calls per
//! minute per container), with the slope depending on host resource
//! interference (Eq. 15 of the paper):
//!
//! ```text
//! L(γ) = (α₁·C + β₁·M + c₁)·γ + b₁   for γ ≤ σ(C, M)   (low interval)
//! L(γ) = (α₂·C + β₂·M + c₂)·γ + b₂   for γ > σ(C, M)   (high interval)
//! ```
//!
//! where `C` and `M` are the host CPU and memory utilisation in `[0, 1]`.
//! The cut-off point σ — where queueing in the container's finite thread
//! pool starts to dominate — itself moves with interference, and is learned
//! with a decision tree (§5.2); [`CutoffModel`] covers the constant, affine
//! and tree-structured forms.

use serde::{Deserialize, Serialize};

/// Host-level resource interference observed by a container (§2.2).
///
/// Both components are utilisations in `[0, 1]`. The paper shows that CPU
/// and memory utilisation alone are sufficient to profile microservice
/// latency accurately (§5.2, Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interference {
    /// Host CPU utilisation in `[0, 1]`.
    pub cpu: f64,
    /// Host memory utilisation in `[0, 1]`.
    pub memory: f64,
}

impl Interference {
    /// Creates an interference point, clamping both utilisations to `[0, 1]`.
    pub fn new(cpu: f64, memory: f64) -> Self {
        Self {
            cpu: cpu.clamp(0.0, 1.0),
            memory: memory.clamp(0.0, 1.0),
        }
    }

    /// Linear interpolation between two interference levels.
    pub fn lerp(self, other: Self, t: f64) -> Self {
        Self::new(
            self.cpu + (other.cpu - self.cpu) * t,
            self.memory + (other.memory - self.memory) * t,
        )
    }
}

impl Default for Interference {
    /// A lightly-loaded host: 20 % CPU, 30 % memory.
    fn default() -> Self {
        Self {
            cpu: 0.2,
            memory: 0.3,
        }
    }
}

/// Which interval of the piecewise model parameters are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interval {
    /// The pre-knee interval (`γ ≤ σ`): latency grows slowly.
    Low,
    /// The post-knee interval (`γ > σ`): queueing dominates and latency
    /// grows quickly.
    High,
}

/// One linear segment of the piecewise model: `L = (α·C + β·M + c)·γ + b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// CPU-interference coefficient α of the slope.
    pub alpha: f64,
    /// Memory-interference coefficient β of the slope.
    pub beta: f64,
    /// Interference-independent slope component c.
    pub c: f64,
    /// Latency intercept b, in milliseconds.
    pub b: f64,
}

impl Segment {
    /// Creates a segment from its four coefficients.
    pub const fn new(alpha: f64, beta: f64, c: f64, b: f64) -> Self {
        Self { alpha, beta, c, b }
    }

    /// A segment with an interference-independent slope.
    pub const fn flat(slope: f64, intercept: f64) -> Self {
        Self::new(0.0, 0.0, slope, intercept)
    }

    /// The slope `a = α·C + β·M + c` at a given interference level.
    pub fn slope(&self, itf: Interference) -> f64 {
        self.alpha * itf.cpu + self.beta * itf.memory + self.c
    }

    /// Evaluates the segment at per-container workload `gamma`.
    pub fn eval(&self, gamma: f64, itf: Interference) -> f64 {
        self.slope(itf) * gamma + self.b
    }

    fn is_valid(&self) -> bool {
        // Negative intercepts are legal for the post-knee segment: a steep
        // line fitted to the queueing regime often crosses the y-axis below
        // zero while staying positive on its own interval.
        [self.alpha, self.beta, self.c, self.b]
            .iter()
            .all(|v| v.is_finite())
    }
}

/// A node of a [`CutoffTree`]: either an internal split on CPU or memory
/// utilisation, or a leaf holding a cut-off value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CutoffNode {
    /// Internal split: `if feature < threshold { left } else { right }`,
    /// where `feature` 0 is CPU utilisation and 1 is memory utilisation, and
    /// the child fields are indices into [`CutoffTree::nodes`].
    Split {
        /// 0 = CPU utilisation, 1 = memory utilisation.
        feature: u8,
        /// Split threshold in `[0, 1]`.
        threshold: f64,
        /// Index of the subtree taken when `feature < threshold`.
        left: u32,
        /// Index of the subtree taken otherwise.
        right: u32,
    },
    /// Leaf: the predicted cut-off (calls/min per container).
    Leaf(f64),
}

/// A small regression tree mapping interference to the cut-off point σ,
/// as learned by the decision-tree model of §5.2.
///
/// Trees are produced by the `erms-profilers` crate but evaluated here so
/// that a [`LatencyProfile`] is self-contained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CutoffTree {
    /// Tree nodes; index 0 is the root. Must be non-empty.
    pub nodes: Vec<CutoffNode>,
}

impl CutoffTree {
    /// Evaluates the tree at an interference point.
    ///
    /// Returns the leaf value reached, or `0.0` for an empty tree (which
    /// [`LatencyProfile::validate`] rejects).
    pub fn eval(&self, itf: Interference) -> f64 {
        let mut idx = 0usize;
        loop {
            match self.nodes.get(idx) {
                Some(CutoffNode::Leaf(v)) => return *v,
                Some(CutoffNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                }) => {
                    let value = if *feature == 0 { itf.cpu } else { itf.memory };
                    idx = if value < *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
                None => return 0.0,
            }
        }
    }

    fn is_valid(&self) -> bool {
        !self.nodes.is_empty()
            && self.nodes.iter().all(|n| match n {
                CutoffNode::Leaf(v) => v.is_finite() && *v >= 0.0,
                CutoffNode::Split {
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    threshold.is_finite()
                        && (*left as usize) < self.nodes.len()
                        && (*right as usize) < self.nodes.len()
                }
            })
    }
}

/// How the knee of the piecewise model moves with interference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CutoffModel {
    /// Interference-independent cut-off.
    Constant(f64),
    /// Affine cut-off `σ = base − k_cpu·C − k_mem·M`, clamped at `min`.
    ///
    /// The paper observes that "resource interference forces the cut-off
    /// point to move forward" (§2.2) — higher interference, earlier knee —
    /// which an affine model with non-negative `k` coefficients captures.
    Affine {
        /// Cut-off at zero interference.
        base: f64,
        /// Reduction per unit of CPU utilisation.
        k_cpu: f64,
        /// Reduction per unit of memory utilisation.
        k_mem: f64,
        /// Lower clamp for the cut-off.
        min: f64,
    },
    /// Decision-tree model (§5.2), as learned by `erms-profilers`.
    Tree(CutoffTree),
}

impl CutoffModel {
    /// Evaluates the cut-off at an interference level, in calls/min per
    /// container.
    pub fn eval(&self, itf: Interference) -> f64 {
        match self {
            CutoffModel::Constant(v) => *v,
            CutoffModel::Affine {
                base,
                k_cpu,
                k_mem,
                min,
            } => (base - k_cpu * itf.cpu - k_mem * itf.memory).max(*min),
            CutoffModel::Tree(tree) => tree.eval(itf),
        }
    }

    fn is_valid(&self) -> bool {
        match self {
            // An infinite cut-off is legal: it degenerates the model to a
            // single interval (see [`LatencyProfile::linear`]).
            CutoffModel::Constant(v) => !v.is_nan() && *v >= 0.0,
            CutoffModel::Affine {
                base,
                k_cpu,
                k_mem,
                min,
            } => {
                [base, k_cpu, k_mem, min].iter().all(|v| v.is_finite())
                    && *base >= 0.0
                    && *min >= 0.0
            }
            CutoffModel::Tree(tree) => tree.is_valid(),
        }
    }
}

/// Interference-resolved linear parameters `L = a·(γ_total/n) + b` used by
/// the scaling model of §4.1.
///
/// `a` already folds in the interference level (`a = α·C + β·M + c`), so the
/// closed-form results of §4.2 can treat it as a constant for one scaling
/// round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearParams {
    /// Effective slope `a` (milliseconds per call/min per container).
    pub a: f64,
    /// Intercept `b` in milliseconds.
    pub b: f64,
}

impl LinearParams {
    /// Creates resolved linear parameters.
    pub const fn new(a: f64, b: f64) -> Self {
        Self { a, b }
    }

    /// Latency at per-container workload `gamma`.
    pub fn eval(&self, gamma: f64) -> f64 {
        self.a * gamma + self.b
    }
}

/// The full piecewise-linear latency profile of one microservice (Eq. 15).
///
/// ```
/// use erms_core::latency::{Interference, LatencyProfile};
///
/// // 2 ms zero-load latency, knee at 500 calls/min/container, 5x slope
/// // past the knee.
/// let p = LatencyProfile::kneed(0.002, 2.0, 0.01, 500.0);
/// let itf = Interference::default();
/// assert!(p.eval(250.0, itf) < p.eval(750.0, itf));
/// // Continuous at the knee.
/// assert!((p.eval(499.9, itf) - p.eval(500.1, itf)).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// Parameters of the pre-knee interval (`γ ≤ σ`).
    pub low: Segment,
    /// Parameters of the post-knee interval (`γ > σ`).
    pub high: Segment,
    /// The interference-dependent cut-off σ.
    pub cutoff: CutoffModel,
}

impl LatencyProfile {
    /// Creates a profile from its segments and cut-off model.
    pub fn new(low: Segment, high: Segment, cutoff: CutoffModel) -> Self {
        Self { low, high, cutoff }
    }

    /// A single-interval, interference-independent profile `L = a·γ + b`.
    ///
    /// Useful for analytic examples (Figs. 4–5 of the paper) where
    /// interference is held constant. `slope` is in ms per (call/min per
    /// container); `intercept_ms` is the zero-load latency.
    pub fn linear(slope: f64, intercept_ms: f64) -> Self {
        let seg = Segment::flat(slope, intercept_ms);
        Self::new(seg, seg, CutoffModel::Constant(f64::INFINITY))
    }

    /// A two-interval interference-independent profile with knee at
    /// `cutoff` calls/min/container. The high segment is constructed to be
    /// continuous at the knee: `b₂ = b₁ + (a₁ − a₂)·σ`.
    pub fn kneed(slope_low: f64, intercept_ms: f64, slope_high: f64, cutoff: f64) -> Self {
        let low = Segment::flat(slope_low, intercept_ms);
        let b2 = intercept_ms + (slope_low - slope_high) * cutoff;
        let high = Segment::flat(slope_high, b2);
        Self::new(low, high, CutoffModel::Constant(cutoff))
    }

    /// The cut-off (calls/min per container) at an interference level.
    pub fn cutoff_at(&self, itf: Interference) -> f64 {
        self.cutoff.eval(itf)
    }

    /// Evaluates tail latency at per-container workload `gamma` (calls/min
    /// per container) under interference `itf`.
    pub fn eval(&self, gamma: f64, itf: Interference) -> f64 {
        if gamma <= self.cutoff_at(itf) {
            self.low.eval(gamma, itf)
        } else {
            self.high.eval(gamma, itf)
        }
    }

    /// Resolves the interval's linear parameters at an interference level,
    /// clamping the slope to a small positive value so the closed-form
    /// allocation (which divides by √a) stays well-defined.
    pub fn params(&self, interval: Interval, itf: Interference) -> LinearParams {
        let seg = match interval {
            Interval::Low => &self.low,
            Interval::High => &self.high,
        };
        LinearParams::new(seg.slope(itf).max(1e-9), seg.b)
    }

    /// Latency at the cut-off point — the threshold used by the two-interval
    /// selection rule of §5.3.1 (targets below this value mean the
    /// microservice actually operates in the low interval).
    pub fn knee_latency(&self, itf: Interference) -> f64 {
        let sigma = self.cutoff_at(itf);
        if sigma.is_finite() {
            self.high.eval(sigma, itf)
        } else {
            f64::INFINITY
        }
    }

    /// Checks structural invariants; returns a human-readable reason on
    /// failure. Used by [`AppBuilder::build`](crate::app::AppBuilder::build).
    pub fn validate(&self) -> std::result::Result<(), String> {
        if !self.low.is_valid() {
            return Err("low segment has non-finite or negative parameters".into());
        }
        if !self.high.is_valid() {
            return Err("high segment has non-finite or negative parameters".into());
        }
        if !self.cutoff.is_valid() {
            return Err("cut-off model is invalid".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ITF: Interference = Interference {
        cpu: 0.5,
        memory: 0.4,
    };

    #[test]
    fn linear_profile_evaluates() {
        let p = LatencyProfile::linear(0.1, 5.0);
        assert!((p.eval(100.0, ITF) - 15.0).abs() < 1e-9);
        assert!((p.eval(0.0, ITF) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn kneed_profile_is_continuous_at_knee() {
        let p = LatencyProfile::kneed(0.01, 2.0, 0.08, 500.0);
        let before = p.eval(499.999, ITF);
        let after = p.eval(500.001, ITF);
        assert!((before - after).abs() < 0.01, "{before} vs {after}");
        // Post-knee grows faster.
        assert!(p.eval(1000.0, ITF) - p.eval(500.0, ITF) > p.eval(500.0, ITF) - p.eval(0.0, ITF));
    }

    #[test]
    fn interference_raises_slope() {
        let seg = Segment::new(0.05, 0.03, 0.01, 1.0);
        let calm = Interference::new(0.1, 0.1);
        let busy = Interference::new(0.9, 0.9);
        assert!(seg.slope(busy) > seg.slope(calm));
    }

    #[test]
    fn affine_cutoff_moves_forward_with_interference() {
        let cut = CutoffModel::Affine {
            base: 1000.0,
            k_cpu: 400.0,
            k_mem: 300.0,
            min: 100.0,
        };
        let calm = cut.eval(Interference::new(0.1, 0.1));
        let busy = cut.eval(Interference::new(0.9, 0.9));
        assert!(busy < calm);
        assert!(busy >= 100.0);
    }

    #[test]
    fn cutoff_tree_eval() {
        // if cpu < 0.5 { 800 } else { if mem < 0.5 { 500 } else { 300 } }
        let tree = CutoffTree {
            nodes: vec![
                CutoffNode::Split {
                    feature: 0,
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                CutoffNode::Leaf(800.0),
                CutoffNode::Split {
                    feature: 1,
                    threshold: 0.5,
                    left: 3,
                    right: 4,
                },
                CutoffNode::Leaf(500.0),
                CutoffNode::Leaf(300.0),
            ],
        };
        assert_eq!(tree.eval(Interference::new(0.2, 0.9)), 800.0);
        assert_eq!(tree.eval(Interference::new(0.7, 0.2)), 500.0);
        assert_eq!(tree.eval(Interference::new(0.7, 0.8)), 300.0);
    }

    #[test]
    fn params_clamps_slope_positive() {
        let p = LatencyProfile::new(
            Segment::flat(-5.0, 1.0),
            Segment::flat(0.0, 1.0),
            CutoffModel::Constant(10.0),
        );
        assert!(p.params(Interval::Low, ITF).a > 0.0);
        assert!(p.params(Interval::High, ITF).a > 0.0);
    }

    #[test]
    fn validate_rejects_nan() {
        let mut p = LatencyProfile::linear(0.1, 1.0);
        p.low.c = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn knee_latency_uses_high_segment() {
        let p = LatencyProfile::kneed(0.01, 2.0, 0.08, 500.0);
        let knee = p.knee_latency(ITF);
        assert!((knee - p.high.eval(500.0, ITF)).abs() < 1e-9);
    }

    #[test]
    fn interference_is_clamped() {
        let itf = Interference::new(3.0, -2.0);
        assert_eq!(itf.cpu, 1.0);
        assert_eq!(itf.memory, 0.0);
    }

    #[test]
    fn lerp_midpoint() {
        let a = Interference::new(0.0, 0.0);
        let b = Interference::new(1.0, 0.5);
        let mid = a.lerp(b, 0.5);
        assert!((mid.cpu - 0.5).abs() < 1e-12);
        assert!((mid.memory - 0.25).abs() < 1e-12);
    }
}
