//! Self-healing control loop: bounded retries, a degradation ladder, and
//! plan hysteresis for the periodic Erms controller.
//!
//! [`ErmsManager`](crate::manager::ErmsManager) is the happy-path round:
//! observe → plan → provision, propagating every failure to the caller and
//! leaving the cluster untouched on error (provisioning is transactional,
//! see [`provision`]). On a real cluster the world breaks mid-round —
//! containers crash, hosts drain, an operator pushes an SLA below the
//! latency floor, refitted profiles go bad — and a controller that simply
//! errors out stops managing exactly when it is needed most. FIRM (Qiu et
//! al., OSDI '20) frames SLO mitigation *under anomalies* as the core
//! problem; [`ResilientManager`] is this reproduction's answer.
//!
//! Every round runs the same ladder:
//!
//! 1. **Plan.** Compute the Erms plan. If planning fails (e.g.
//!    [`Error::SlaInfeasible`] after a bad profile refit), fall back to the
//!    last-known-good plan, bounded by
//!    [`ResilienceConfig::staleness_bound`] rounds; beyond the bound the
//!    round is skipped rather than applying an arbitrarily stale plan.
//! 2. **Hysteresis.** Suppress per-microservice rescalings smaller than a
//!    minimum delta, and direction flips within a cooldown window, so
//!    noise in the observed interference cannot flap the deployment
//!    between rounds. Explicit scale-to-zero is always honoured.
//! 3. **Evacuate.** (Spot-aware rung.) When any host carries a pending
//!    spot-reclamation notice, drain its containers *before* the grace
//!    deadline so the subsequent provisioning pass re-places them on
//!    surviving capacity — losing nothing when the provider takes the host
//!    back. Disabled by [`ResilienceConfig::spot_aware`] `= false`, which
//!    reproduces the PR-1 reactive ladder.
//! 4. **Provision.** Apply the plan transactionally. On
//!    [`Error::InsufficientCapacity`], first retry with a relaxed
//!    placement policy (whole-cluster instead of POP groups), then —
//!    resize-before-shed — vertically squeeze every container by
//!    [`ResilienceConfig::resize_step`] per attempt down to
//!    [`ResilienceConfig::min_resize`], and only when squeezed containers
//!    still do not fit, proportionally shed the demand of the
//!    lowest-priority services (loosest SLA first) and re-plan, up to
//!    [`ResilienceConfig::max_shed_attempts`] times.
//!
//! Every fallback taken is recorded in a [`ResilienceReport`] so
//! experiments can audit exactly which rounds ran degraded and why. A round
//! that cannot make safe progress is *skipped* — the transactional
//! provisioner guarantees the cluster is left exactly as it was — and the
//! skip itself is reported. `run_round` therefore never returns an error
//! and never panics; the worst case is an honest no-op.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::app::{App, WorkloadVector};
use crate::autoscaler::ScalingPlan;
use crate::cache::PlanCache;
use crate::error::Error;
use crate::ids::{MicroserviceId, ServiceId};
use crate::incremental::{IncrementalPlanner, PlannerMetrics};
use crate::latency::Interference;
use crate::manager::SchedulingMode;
use crate::provisioning::{provision_with_resize, ClusterState, PlacementPolicy, ProvisionReport};
use crate::scaling::ScalerConfig;

/// Tunables of the degradation ladder and the hysteresis filter.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Scaler configuration forwarded to planning.
    pub scaler: ScalerConfig,
    /// Scheduling mode forwarded to planning.
    pub mode: SchedulingMode,
    /// Preferred placement policy; the ladder relaxes it on capacity
    /// failures before shedding demand.
    pub placement: PlacementPolicy,
    /// Maximum demand-shedding attempts per round before the round is
    /// skipped.
    pub max_shed_attempts: usize,
    /// Fraction of demand removed from each shed service per attempt
    /// (attempt `k` sheds the `k` lowest-priority services to
    /// `(1 − shed_step)^k` of their observed rate).
    pub shed_step: f64,
    /// Maximum age, in rounds, of a last-known-good plan that may substitute
    /// for a failed planning pass.
    pub staleness_bound: u64,
    /// Minimum absolute container delta an applied rescaling must have;
    /// smaller proposals keep the previous count.
    pub min_delta: u32,
    /// Minimum relative container delta (fraction of the previous count);
    /// the effective threshold is `max(min_delta, ceil(frac · previous))`.
    pub min_delta_fraction: f64,
    /// Rounds after a rescaling during which an opposite-direction
    /// rescaling of the same microservice is suppressed.
    pub cooldown_rounds: u64,
    /// Whether the spot-aware rungs run: evacuate hosts with pending
    /// reclamation notices before provisioning, and vertically squeeze
    /// containers (resize-in-place) before shedding demand. `false`
    /// reproduces the original reactive ladder.
    pub spot_aware: bool,
    /// Fraction by which the resize rung shrinks container requests per
    /// squeeze step (`factor ← factor · (1 − resize_step)`).
    pub resize_step: f64,
    /// Floor of the vertical-scaling factor; below this the ladder stops
    /// squeezing and starts shedding demand instead.
    pub min_resize: f64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            scaler: ScalerConfig::default(),
            mode: SchedulingMode::Priority,
            placement: PlacementPolicy::default(),
            max_shed_attempts: 3,
            shed_step: 0.25,
            staleness_bound: 3,
            min_delta: 2,
            min_delta_fraction: 0.1,
            cooldown_rounds: 1,
            spot_aware: true,
            resize_step: 0.15,
            min_resize: 0.6,
        }
    }
}

/// One fallback the ladder took during a round. The order of actions in a
/// [`ResilienceReport`] is the order they happened.
#[derive(Debug, Clone, PartialEq)]
pub enum FallbackAction {
    /// Planning failed and the last-known-good plan was applied instead.
    StalePlanApplied {
        /// How many rounds old the substituted plan is.
        age_rounds: u64,
    },
    /// A sub-minimum-delta rescaling was suppressed; the previous count
    /// stays in force.
    HysteresisHold {
        /// The affected microservice.
        ms: MicroserviceId,
        /// The container count the plan proposed.
        proposed: u32,
        /// The container count that was kept.
        kept: u32,
    },
    /// An opposite-direction rescaling inside the cooldown window was
    /// suppressed.
    CooldownHold {
        /// The affected microservice.
        ms: MicroserviceId,
        /// The container count the plan proposed.
        proposed: u32,
        /// The container count that was kept.
        kept: u32,
    },
    /// Placement failed and was retried with a relaxed policy.
    RelaxedPlacement {
        /// The policy that failed.
        from: PlacementPolicy,
        /// The policy retried with.
        to: PlacementPolicy,
    },
    /// Hosts with pending spot-reclamation notices were drained so their
    /// containers could be re-placed on surviving capacity inside the
    /// grace window.
    SpotEvacuation {
        /// Number of reclaiming hosts drained.
        hosts: usize,
        /// Containers drained (and re-placed by the provisioning pass).
        containers: u32,
    },
    /// Containers were vertically squeezed (resize-in-place) to fit a
    /// capacity crunch before any demand was shed.
    ResizeInPlace {
        /// The uniform vertical-scaling factor now in effect (< 1).
        factor: f64,
    },
    /// A service's demand was proportionally shed before re-planning.
    ShedDemand {
        /// The shed service.
        service: ServiceId,
        /// The factor its observed rate was multiplied by (< 1).
        factor: f64,
    },
    /// The round made no change to the cluster; the reason explains why.
    RoundSkipped {
        /// Human-readable reason for the skip.
        reason: String,
    },
}

/// Audit record of one [`ResilientManager::run_round`]: every fallback
/// taken and every error absorbed, in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceReport {
    /// The 1-based round number this report belongs to.
    pub round: u64,
    /// Fallbacks taken, in order.
    pub actions: Vec<FallbackAction>,
    /// Errors the ladder absorbed (planning and placement failures).
    pub errors: Vec<Error>,
}

impl ResilienceReport {
    fn new(round: u64) -> Self {
        Self {
            round,
            ..Self::default()
        }
    }

    /// Whether this round deviated from the happy path in any way.
    pub fn degraded(&self) -> bool {
        !self.actions.is_empty() || !self.errors.is_empty()
    }

    /// Whether the round was skipped entirely (no plan applied).
    pub fn skipped(&self) -> bool {
        self.actions
            .iter()
            .any(|a| matches!(a, FallbackAction::RoundSkipped { .. }))
    }
}

/// The outcome of one resilient controller round.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientOutcome {
    /// The plan that was applied, or `None` when the round was skipped.
    pub plan: Option<ScalingPlan>,
    /// The interference observed before scaling.
    pub observed_interference: Interference,
    /// Placement summary, or `None` when the round was skipped.
    pub provision: Option<ProvisionReport>,
    /// Audit record of fallbacks and absorbed errors.
    pub report: ResilienceReport,
}

impl ResilientOutcome {
    /// Whether a plan was actually applied this round.
    pub fn applied(&self) -> bool {
        self.provision.is_some()
    }
}

/// Portable snapshot of a [`ResilientManager`]'s decision-shaping state,
/// produced by [`ResilientManager::export_state`] and consumed by
/// [`ResilientManager::restore_state`]. Everything in here feeds future
/// rounds: the round counter drives staleness/cooldown arithmetic, the
/// last applied plan is the hysteresis baseline, the last-known-good plan
/// backs the stale-plan rung, and the direction map backs the cooldown
/// rung.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ManagerState {
    /// Rounds run so far (the next round is `round + 1`).
    pub round: u64,
    /// The last plan that was successfully applied.
    pub last_applied: Option<ScalingPlan>,
    /// The last freshly planned (not stale-substituted) applied plan and
    /// the round it was planned in.
    pub last_good: Option<(ScalingPlan, u64)>,
    /// Per-microservice last rescaling: (+1 up / −1 down, round it
    /// happened).
    pub directions: BTreeMap<MicroserviceId, (i8, u64)>,
}

/// The self-healing wrapper around the Erms controller round.
///
/// Unlike [`ErmsManager`](crate::manager::ErmsManager), which borrows one
/// [`App`] for its lifetime, `ResilientManager` takes the application per
/// round: the production loop refits profiles (and hence rebuilds the app)
/// between rounds, and a bad refit is precisely one of the faults the
/// ladder must absorb.
///
/// # Example
///
/// ```
/// use erms_core::prelude::*;
/// use erms_core::resilience::{ResilienceConfig, ResilientManager};
///
/// let mut b = AppBuilder::new("demo");
/// let m = b.microservice("m", LatencyProfile::linear(0.01, 1.0), Resources::new(0.5, 512.0));
/// b.service("s", Sla::p95_ms(100.0), |g| { g.entry(m); });
/// let app = b.build()?;
///
/// let mut state = ClusterState::paper_cluster();
/// let mut manager = ResilientManager::new(ResilienceConfig::default());
/// let w = WorkloadVector::uniform(&app, RequestRate::per_minute(10_000.0));
/// let outcome = manager.run_round(&app, &mut state, &w);
/// assert!(outcome.applied());
/// assert!(!outcome.report.degraded());
/// # Ok::<(), erms_core::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResilientManager {
    config: ResilienceConfig,
    round: u64,
    last_applied: Option<ScalingPlan>,
    last_good: Option<(ScalingPlan, u64)>,
    /// Per-microservice last rescaling: (+1 up / −1 down, round it happened).
    directions: BTreeMap<MicroserviceId, (i8, u64)>,
    history: Vec<ResilienceReport>,
    /// Merge-tree memo shared by every planning attempt (rung 0 and shed
    /// re-plans). The app's graphs never change between rounds, so after
    /// the first round every rung replays cached merges — `Default` gives
    /// each manager its own empty cache, and `Clone` shares it.
    cache: Arc<PlanCache>,
    /// Incremental planning engine: carries last round's plan state so a
    /// round whose inputs barely changed re-plans only the dirty services
    /// (bit-identical to a cold plan by construction). Errors drop its
    /// state, so ladder behaviour is unchanged — a failed plan is retried
    /// cold next round.
    planner: IncrementalPlanner,
}

impl ResilientManager {
    /// Creates a manager with the given ladder configuration.
    pub fn new(config: ResilienceConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// The ladder configuration.
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// The merge-tree memo used by every planning attempt, exposing
    /// hit/miss counters for observability and tests.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Work counters of the incremental planning engine backing rung 0
    /// (full builds, services replanned vs. reused, re-merged nodes).
    pub fn planner_metrics(&self) -> PlannerMetrics {
        self.planner.metrics()
    }

    /// Drops the incremental planner's carried state; the next round plans
    /// from scratch (the merge-tree memo is unaffected).
    pub fn invalidate_planner(&mut self) {
        self.planner.invalidate();
    }

    /// Reports of every round run so far, in order — the audit trail of
    /// degraded rounds.
    pub fn history(&self) -> &[ResilienceReport] {
        &self.history
    }

    /// The last plan that was successfully applied, if any.
    pub fn last_applied(&self) -> Option<&ScalingPlan> {
        self.last_applied.as_ref()
    }

    /// Exports the mutable controller state that shapes *future* rounds —
    /// the round counter, the hysteresis baseline (last applied plan and
    /// rescaling directions) and the last-known-good fallback plan — so a
    /// restarted process can resume with bit-identical decisions. The audit
    /// history is deliberately excluded (it never feeds back into
    /// decisions), and so is the incremental planner's carried state: a
    /// restored manager replans cold on its first round, which the
    /// planner's own invariant guarantees is bit-identical to the warm
    /// re-plan the uninterrupted manager would have produced.
    pub fn export_state(&self) -> ManagerState {
        ManagerState {
            round: self.round,
            last_applied: self.last_applied.clone(),
            last_good: self.last_good.clone(),
            directions: self.directions.clone(),
        }
    }

    /// Restores state captured by [`export_state`](Self::export_state),
    /// dropping any carried planner state so the next round plans cold.
    pub fn restore_state(&mut self, state: ManagerState) {
        self.round = state.round;
        self.last_applied = state.last_applied;
        self.last_good = state.last_good;
        self.directions = state.directions;
        self.planner.invalidate();
    }

    /// Runs one resilient controller round. Never panics and never returns
    /// an error: a round that cannot make safe progress is skipped (the
    /// cluster is left exactly as it was) and the skip is recorded in the
    /// returned report.
    pub fn run_round(
        &mut self,
        app: &App,
        state: &mut ClusterState,
        workloads: &WorkloadVector,
    ) -> ResilientOutcome {
        self.round += 1;
        let round = self.round;
        let mut report = ResilienceReport::new(round);
        let itf = state.average_interference(app);

        // Rung 0: plan, or fall back to the last-known-good plan. A stale
        // plan is applied but does NOT refresh the last-known-good round —
        // it was never re-validated — so the staleness bound genuinely
        // limits how long a broken planner can coast.
        let mut fresh = true;
        self.planner
            .ensure_config(&self.config.scaler, self.config.mode);
        let mut plan = match self
            .planner
            .replan_auto(app, workloads, itf, Some(&self.cache))
            .cloned()
        {
            Ok(plan) => plan,
            Err(err) => {
                report.errors.push(err);
                match &self.last_good {
                    Some((plan, good_round))
                        if round - good_round <= self.config.staleness_bound =>
                    {
                        report.actions.push(FallbackAction::StalePlanApplied {
                            age_rounds: round - good_round,
                        });
                        fresh = false;
                        plan.clone()
                    }
                    Some((_, good_round)) => {
                        return self.skip(
                            itf,
                            report,
                            format!(
                                "planning failed and the last-known-good plan is {} rounds \
                                 stale (bound {})",
                                round - good_round,
                                self.config.staleness_bound
                            ),
                        );
                    }
                    None => {
                        return self.skip(
                            itf,
                            report,
                            "planning failed and no last-known-good plan exists".to_string(),
                        );
                    }
                }
            }
        };

        self.apply_hysteresis(round, &mut plan, &mut report);

        // Everything below mutates a working copy of the cluster and commits
        // only on success, so a skipped round — even one that evacuated spot
        // hosts or squeezed containers along the way — leaves `state`
        // exactly as it was.
        let mut working = state.clone();

        // Spot-aware rung: hosts with pending reclamation notices are
        // drained now, so the provisioning pass below re-places their
        // containers on surviving capacity inside the grace window. The
        // reactive ladder (spot_aware = false) leaves them in place and
        // loses them when the provider executes the reclamation.
        if self.config.spot_aware {
            let (hosts, containers) = working.evacuate_reclaiming();
            if hosts > 0 {
                report
                    .actions
                    .push(FallbackAction::SpotEvacuation { hosts, containers });
            }
        }

        // Remaining rungs: provision; on capacity failure relax placement,
        // then squeeze containers (resize-before-shed), then shed demand
        // and re-plan.
        let mut policy = self.config.placement;
        let mut relaxed = false;
        let mut attempt = 0usize;
        let mut resize_factor = 1.0f64;
        loop {
            match provision_with_resize(&mut working, app, &plan, policy, resize_factor) {
                Ok(prov) => {
                    *state = working;
                    self.commit(round, &plan, fresh);
                    self.history.push(report.clone());
                    return ResilientOutcome {
                        plan: Some(plan),
                        observed_interference: itf,
                        provision: Some(prov),
                        report,
                    };
                }
                Err(err @ Error::InsufficientCapacity { .. }) => {
                    report.errors.push(err);
                    if !relaxed {
                        relaxed = true;
                        if let Some(next) = relax(policy) {
                            report.actions.push(FallbackAction::RelaxedPlacement {
                                from: policy,
                                to: next,
                            });
                            policy = next;
                            continue;
                        }
                    }
                    // Resize-before-shed: shrink every container's request
                    // until the floor, keeping all replicas (and hence all
                    // demand) alive at reduced per-container capacity.
                    if self.config.spot_aware
                        && self.config.resize_step > 0.0
                        && resize_factor > self.config.min_resize + 1e-9
                    {
                        resize_factor = (resize_factor * (1.0 - self.config.resize_step))
                            .max(self.config.min_resize);
                        report.actions.push(FallbackAction::ResizeInPlace {
                            factor: resize_factor,
                        });
                        continue;
                    }
                    attempt += 1;
                    if attempt > self.config.max_shed_attempts {
                        return self.skip(
                            itf,
                            report,
                            format!(
                                "insufficient capacity after {} shed attempts",
                                self.config.max_shed_attempts
                            ),
                        );
                    }
                    let shed = self.shed_workloads(app, workloads, attempt, &mut report);
                    match self
                        .planner
                        .replan_auto(app, &shed, itf, Some(&self.cache))
                        .cloned()
                    {
                        Ok(replanned) => {
                            plan = replanned;
                            self.apply_hysteresis(round, &mut plan, &mut report);
                        }
                        Err(err) => {
                            report.errors.push(err);
                            return self.skip(
                                itf,
                                report,
                                "re-planning after demand shedding failed".to_string(),
                            );
                        }
                    }
                }
                Err(err) => {
                    report.errors.push(err);
                    return self.skip(itf, report, "placement failed unrecoverably".to_string());
                }
            }
        }
    }

    /// Suppresses sub-threshold rescalings and cooldown-window direction
    /// flips against the last applied plan. Explicit scale-to-zero and
    /// microservices the previous plan did not govern pass through
    /// untouched.
    fn apply_hysteresis(&self, round: u64, plan: &mut ScalingPlan, report: &mut ResilienceReport) {
        let Some(prev) = &self.last_applied else {
            return;
        };
        let proposals: Vec<(MicroserviceId, u32)> = plan.iter().collect();
        for (ms, proposed) in proposals {
            let Some(kept) = prev.get(ms) else {
                continue;
            };
            if proposed == kept || proposed == 0 {
                continue;
            }
            let delta = proposed.abs_diff(kept);
            let threshold = self
                .config
                .min_delta
                .max((kept as f64 * self.config.min_delta_fraction).ceil() as u32);
            if delta < threshold {
                plan.set_containers(ms, kept);
                report
                    .actions
                    .push(FallbackAction::HysteresisHold { ms, proposed, kept });
                continue;
            }
            let dir: i8 = if proposed > kept { 1 } else { -1 };
            if let Some(&(last_dir, last_round)) = self.directions.get(&ms) {
                if last_dir != dir && round - last_round <= self.config.cooldown_rounds {
                    plan.set_containers(ms, kept);
                    report
                        .actions
                        .push(FallbackAction::CooldownHold { ms, proposed, kept });
                }
            }
        }
    }

    /// Sheds demand for attempt `k`: the `k` lowest-priority services
    /// (loosest SLA first — the least latency-critical traffic goes first)
    /// are scaled to `(1 − shed_step)^k` of their observed rate. Rates stay
    /// strictly positive, so — by the explicit plan semantics of
    /// [`erms_plan`](crate::manager::erms_plan) — a shed service's
    /// microservices are never deallocated
    /// outright.
    fn shed_workloads(
        &self,
        app: &App,
        workloads: &WorkloadVector,
        attempt: usize,
        report: &mut ResilienceReport,
    ) -> WorkloadVector {
        let mut order: Vec<(ServiceId, f64)> = app
            .services()
            .map(|(sid, svc)| (sid, svc.sla.threshold_ms))
            .collect();
        // Loosest SLA = lowest priority = shed first.
        order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let factor = (1.0 - self.config.shed_step).powi(attempt as i32);
        let mut shed = workloads.clone();
        for &(sid, _) in order.iter().take(attempt) {
            let rate = workloads.rate(sid);
            if rate.as_per_minute() <= 0.0 {
                continue;
            }
            shed.set(sid, rate.scaled(factor));
            report.actions.push(FallbackAction::ShedDemand {
                service: sid,
                factor,
            });
        }
        shed
    }

    /// Records a successful application: the last-applied plan, the
    /// rescaling-direction map used by the cooldown and — only for freshly
    /// planned (not stale-substituted) plans — the last-known-good plan.
    fn commit(&mut self, round: u64, plan: &ScalingPlan, fresh: bool) {
        if let Some(prev) = &self.last_applied {
            for (ms, count) in plan.iter() {
                if let Some(old) = prev.get(ms) {
                    if count > old {
                        self.directions.insert(ms, (1, round));
                    } else if count < old {
                        self.directions.insert(ms, (-1, round));
                    }
                }
            }
        }
        self.last_applied = Some(plan.clone());
        if fresh {
            self.last_good = Some((plan.clone(), round));
        }
    }

    /// Finishes a round without touching the cluster.
    fn skip(
        &mut self,
        itf: Interference,
        mut report: ResilienceReport,
        reason: String,
    ) -> ResilientOutcome {
        report.actions.push(FallbackAction::RoundSkipped { reason });
        self.history.push(report.clone());
        ResilientOutcome {
            plan: None,
            observed_interference: itf,
            provision: None,
            report,
        }
    }
}

/// One relaxation step of the placement policy: POP groups collapse to a
/// whole-cluster solve; an already-relaxed policy has nowhere to go.
fn relax(policy: PlacementPolicy) -> Option<PlacementPolicy> {
    match policy {
        PlacementPolicy::InterferenceAware { groups } if groups > 1 => {
            Some(PlacementPolicy::InterferenceAware { groups: 1 })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppBuilder, RequestRate, Sla};
    use crate::latency::LatencyProfile;
    use crate::provisioning::Host;
    use crate::resources::Resources;

    fn two_service_app(sla1_ms: f64, sla2_ms: f64) -> App {
        let mut b = AppBuilder::new("resilience");
        let u = b.microservice(
            "U",
            LatencyProfile::linear(0.08, 3.0),
            Resources::new(0.5, 512.0),
        );
        let h = b.microservice(
            "H",
            LatencyProfile::linear(0.02, 3.0),
            Resources::new(0.5, 512.0),
        );
        let p = b.microservice(
            "P",
            LatencyProfile::linear(0.03, 2.0),
            Resources::new(0.5, 512.0),
        );
        b.service("tight", Sla::p95_ms(sla1_ms), |g| {
            let root = g.entry(u);
            g.call_seq(root, p);
        });
        b.service("loose", Sla::p95_ms(sla2_ms), |g| {
            let root = g.entry(h);
            g.call_seq(root, p);
        });
        b.build().unwrap()
    }

    fn workloads(app: &App, per_minute: f64) -> WorkloadVector {
        WorkloadVector::uniform(app, RequestRate::per_minute(per_minute))
    }

    #[test]
    fn clean_round_is_not_degraded() {
        let app = two_service_app(300.0, 300.0);
        let mut state = ClusterState::paper_cluster();
        let mut mgr = ResilientManager::new(ResilienceConfig::default());
        let outcome = mgr.run_round(&app, &mut state, &workloads(&app, 20_000.0));
        assert!(outcome.applied());
        assert!(!outcome.report.degraded());
        assert_eq!(mgr.history().len(), 1);
    }

    #[test]
    fn infeasible_sla_falls_back_to_last_known_good_within_bound() {
        let good = two_service_app(300.0, 300.0);
        // Same topology, but the tight service's SLA sits below the 5 ms
        // intercept floor — e.g. an operator pushed a bad SLA, or profiles
        // were refit from corrupted traces.
        let bad = two_service_app(1.0, 300.0);
        let mut state = ClusterState::paper_cluster();
        let cfg = ResilienceConfig {
            staleness_bound: 2,
            ..ResilienceConfig::default()
        };
        let mut mgr = ResilientManager::new(cfg);
        let w = workloads(&good, 20_000.0);

        let prime = mgr.run_round(&good, &mut state, &w);
        assert!(prime.applied() && !prime.report.degraded());
        let good_plan = prime.plan.clone().unwrap();

        // Rounds 2 and 3: infeasible planning, stale plan substitutes.
        for expected_age in 1..=2u64 {
            let outcome = mgr.run_round(&bad, &mut state, &w);
            assert!(outcome.applied(), "stale plan should still apply");
            assert_eq!(outcome.plan.as_ref().unwrap(), &good_plan);
            assert!(outcome
                .report
                .actions
                .iter()
                .any(|a| matches!(a, FallbackAction::StalePlanApplied { age_rounds } if *age_rounds == expected_age)));
            assert!(matches!(
                outcome.report.errors[0],
                Error::SlaInfeasible { .. }
            ));
        }
        // Round 4: the plan is now 3 rounds stale, beyond the bound of 2 —
        // the round is skipped rather than coasting on it forever.
        let outcome = mgr.run_round(&bad, &mut state, &w);
        assert!(!outcome.applied());
        assert!(outcome.report.skipped());
        // Recovery: a feasible app plans normally again and refreshes the
        // last-known-good plan.
        let recovered = mgr.run_round(&good, &mut state, &w);
        assert!(recovered.applied());
        assert!(recovered.report.errors.is_empty());
    }

    #[test]
    fn infeasible_sla_with_no_history_skips_round() {
        let bad = two_service_app(1.0, 300.0);
        let mut state = ClusterState::paper_cluster();
        let before = state.clone();
        let mut mgr = ResilientManager::new(ResilienceConfig::default());
        let outcome = mgr.run_round(&bad, &mut state, &workloads(&bad, 20_000.0));
        assert!(!outcome.applied());
        assert!(outcome.report.skipped());
        assert_eq!(state, before, "a skipped round must not touch the cluster");
    }

    #[test]
    fn capacity_failure_sheds_lowest_priority_demand() {
        let app = two_service_app(300.0, 600.0);
        // Two small hosts: the full plan cannot fit, a shed plan can.
        let mut state = ClusterState::new(vec![Host::new(8.0, 16_384.0), Host::new(8.0, 16_384.0)]);
        // spot_aware = false: this test pins the *reactive* shed path, with
        // the resize-before-shed rung out of the way.
        let mut mgr = ResilientManager::new(ResilienceConfig {
            max_shed_attempts: 8,
            shed_step: 0.5,
            spot_aware: false,
            ..ResilienceConfig::default()
        });
        let outcome = mgr.run_round(&app, &mut state, &workloads(&app, 60_000.0));
        assert!(
            outcome
                .report
                .errors
                .iter()
                .any(|e| matches!(e, Error::InsufficientCapacity { .. })),
            "expected a capacity error to be absorbed: {:?}",
            outcome.report
        );
        let shed_services: Vec<ServiceId> = outcome
            .report
            .actions
            .iter()
            .filter_map(|a| match a {
                FallbackAction::ShedDemand { service, .. } => Some(*service),
                _ => None,
            })
            .collect();
        assert!(!shed_services.is_empty(), "demand must have been shed");
        // The loose-SLA service (id 1) is shed first.
        assert_eq!(shed_services[0], app.service_by_name("loose").unwrap());
        if outcome.applied() {
            // Whatever was applied fits the cluster.
            for host in state.hosts() {
                let (cpu, mem) = host.utilization(&app);
                assert!(cpu <= 1.0 + 1e-9 && mem <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn hopeless_capacity_skips_round_and_leaves_state() {
        let app = two_service_app(300.0, 600.0);
        let mut state = ClusterState::new(vec![Host::new(0.25, 256.0)]);
        let before = state.clone();
        let mut mgr = ResilientManager::new(ResilienceConfig::default());
        let outcome = mgr.run_round(&app, &mut state, &workloads(&app, 60_000.0));
        assert!(!outcome.applied());
        assert!(outcome.report.skipped());
        assert_eq!(state, before);
    }

    #[test]
    fn hysteresis_holds_small_deltas_and_honours_zero() {
        let app = two_service_app(300.0, 300.0);
        let mut state = ClusterState::paper_cluster();
        let mut mgr = ResilientManager::new(ResilienceConfig {
            min_delta: 1_000,
            min_delta_fraction: 0.0,
            ..ResilienceConfig::default()
        });
        let w1 = workloads(&app, 20_000.0);
        let first = mgr.run_round(&app, &mut state, &w1);
        let first_plan = first.plan.clone().unwrap();
        // Slightly different workload: every proposed delta is far below the
        // absurd min_delta, so the applied plan must equal the first.
        let w2 = workloads(&app, 21_000.0);
        let second = mgr.run_round(&app, &mut state, &w2);
        assert!(second.applied());
        assert_eq!(
            second.plan.as_ref().unwrap().total_containers(),
            first_plan.total_containers()
        );
        assert!(second
            .report
            .actions
            .iter()
            .any(|a| matches!(a, FallbackAction::HysteresisHold { .. })));
        // Zero workload: explicit scale-to-zero bypasses the hold.
        let w0 = WorkloadVector::new();
        let third = mgr.run_round(&app, &mut state, &w0);
        assert!(third.applied());
        assert_eq!(third.plan.as_ref().unwrap().total_containers(), 0);
    }

    #[test]
    fn cooldown_suppresses_direction_flip() {
        let app = two_service_app(300.0, 300.0);
        let mut state = ClusterState::paper_cluster();
        let mut mgr = ResilientManager::new(ResilienceConfig {
            min_delta: 1,
            min_delta_fraction: 0.0,
            cooldown_rounds: 1,
            ..ResilienceConfig::default()
        });
        let low = workloads(&app, 10_000.0);
        let high = workloads(&app, 60_000.0);
        mgr.run_round(&app, &mut state, &low);
        let up = mgr.run_round(&app, &mut state, &high); // direction: up
        assert!(up.applied());
        let up_plan = up.plan.unwrap();
        // Immediately back down: inside the cooldown window the flip must be
        // suppressed for every microservice that just scaled up.
        let down = mgr.run_round(&app, &mut state, &low);
        assert!(down.applied());
        let down_plan = down.plan.unwrap();
        assert_eq!(down_plan.total_containers(), up_plan.total_containers());
        assert!(down
            .report
            .actions
            .iter()
            .any(|a| matches!(a, FallbackAction::CooldownHold { .. })));
        // One round later the flip is allowed.
        let settled = mgr.run_round(&app, &mut state, &low);
        assert!(settled.applied());
        assert!(settled.plan.unwrap().total_containers() < up_plan.total_containers());
    }

    #[test]
    fn resize_rung_runs_before_any_shedding() {
        let app = two_service_app(300.0, 600.0);
        let mut state = ClusterState::new(vec![Host::new(8.0, 16_384.0), Host::new(8.0, 16_384.0)]);
        let mut mgr = ResilientManager::new(ResilienceConfig {
            max_shed_attempts: 8,
            shed_step: 0.5,
            ..ResilienceConfig::default()
        });
        let outcome = mgr.run_round(&app, &mut state, &workloads(&app, 60_000.0));
        let first_resize = outcome
            .report
            .actions
            .iter()
            .position(|a| matches!(a, FallbackAction::ResizeInPlace { .. }));
        let first_shed = outcome
            .report
            .actions
            .iter()
            .position(|a| matches!(a, FallbackAction::ShedDemand { .. }));
        assert!(
            first_resize.is_some(),
            "the capacity crunch must trigger the resize rung: {:?}",
            outcome.report
        );
        if let Some(shed) = first_shed {
            assert!(
                first_resize.unwrap() < shed,
                "resize must be attempted before shedding: {:?}",
                outcome.report.actions
            );
        }
        if outcome.applied() {
            for host in state.hosts() {
                let (cpu, mem) = host.utilization(&app);
                assert!(cpu <= 1.0 + 1e-9 && mem <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn resize_alone_absorbs_a_mild_capacity_crunch() {
        let app = two_service_app(300.0, 600.0);
        // Find a rate whose full-size plan does not fit two 8-core hosts
        // but whose 0.85×-squeezed plan does: first plan on a huge cluster
        // to learn the demand curve, then pick the crunch point.
        let mut crunch_rate = None;
        for rate in (10_000..60_000).step_by(2_000) {
            let mut probe_state = ClusterState::paper_cluster();
            let mut probe = ResilientManager::new(ResilienceConfig::default());
            let outcome = probe.run_round(&app, &mut probe_state, &workloads(&app, rate as f64));
            let plan = outcome.plan.expect("paper cluster fits everything");
            let cpu: f64 = plan.iter().map(|(_, c)| 0.5 * c as f64).sum();
            if cpu > 16.0 && cpu * 0.85 <= 16.0 * 0.98 {
                crunch_rate = Some(rate as f64);
                break;
            }
        }
        let rate = crunch_rate.expect("some rate lands in the resize-recoverable band");
        let mut state = ClusterState::new(vec![Host::new(8.0, 16_384.0), Host::new(8.0, 16_384.0)]);
        let mut mgr = ResilientManager::new(ResilienceConfig::default());
        let outcome = mgr.run_round(&app, &mut state, &workloads(&app, rate));
        assert!(
            outcome.applied(),
            "squeezed plan fits: {:?}",
            outcome.report
        );
        assert!(outcome
            .report
            .actions
            .iter()
            .any(|a| matches!(a, FallbackAction::ResizeInPlace { .. })));
        assert!(
            !outcome
                .report
                .actions
                .iter()
                .any(|a| matches!(a, FallbackAction::ShedDemand { .. })),
            "no demand shed when the squeeze suffices: {:?}",
            outcome.report.actions
        );
    }

    #[test]
    fn spot_evacuation_saves_containers_from_reclamation() {
        use crate::provisioning::HostLifecycle;
        let app = two_service_app(300.0, 300.0);
        let spot = Host::paper_host().with_lifecycle(HostLifecycle::Spot);
        let mut state =
            ClusterState::new(vec![Host::paper_host(), Host::paper_host(), spot.clone()]);
        let mut mgr = ResilientManager::new(ResilienceConfig::default());
        let w = workloads(&app, 20_000.0);
        let first = mgr.run_round(&app, &mut state, &w);
        assert!(first.applied());
        let plan = first.plan.unwrap();

        // Provider posts a notice due at round 4; the next manager round
        // evacuates and re-places inside the grace window.
        assert_eq!(state.post_spot_reclamations(1, 4), 1);
        let second = mgr.run_round(&app, &mut state, &w);
        assert!(second.applied());
        assert!(second
            .report
            .actions
            .iter()
            .any(|a| matches!(a, FallbackAction::SpotEvacuation { hosts: 1, .. })));
        let spot_index = state.reclaiming_hosts()[0];
        assert_eq!(state.hosts()[spot_index].container_count(), 0);

        // Reclamation executes: the host leaves empty, the plan still holds.
        let (gone, lost) = state.execute_due_reclamations(4);
        assert_eq!((gone, lost), (1, 0));
        for (ms, target) in plan.iter() {
            assert_eq!(state.containers_of(ms), target);
        }
    }

    #[test]
    fn reactive_ladder_loses_containers_to_reclamation() {
        use crate::provisioning::HostLifecycle;
        let app = two_service_app(300.0, 300.0);
        let spot = Host::paper_host().with_lifecycle(HostLifecycle::Spot);
        let mut state = ClusterState::new(vec![Host::paper_host(), Host::paper_host(), spot]);
        let mut mgr = ResilientManager::new(ResilienceConfig {
            spot_aware: false,
            ..ResilienceConfig::default()
        });
        let w = workloads(&app, 20_000.0);
        mgr.run_round(&app, &mut state, &w);
        let on_spot = state.hosts()[2].container_count();
        assert!(on_spot > 0, "the spot host should carry containers");
        state.post_spot_reclamations(1, 4);
        let second = mgr.run_round(&app, &mut state, &w);
        assert!(second.applied());
        assert!(
            !second
                .report
                .actions
                .iter()
                .any(|a| matches!(a, FallbackAction::SpotEvacuation { .. })),
            "reactive ladder must not evacuate"
        );
        // The notice was ignored, so the reclamation destroys live replicas.
        let (gone, lost) = state.execute_due_reclamations(4);
        assert_eq!(gone, 1);
        assert!(lost > 0, "unevacuated containers are lost");
    }

    #[test]
    fn exported_state_resumes_bit_identically() {
        let app = two_service_app(300.0, 300.0);
        let mut state = ClusterState::paper_cluster();
        let mut mgr = ResilientManager::new(ResilienceConfig::default());
        let low = workloads(&app, 10_000.0);
        let high = workloads(&app, 60_000.0);
        mgr.run_round(&app, &mut state, &low);
        mgr.run_round(&app, &mut state, &high);

        // Fork: the uninterrupted manager vs a fresh one restored from the
        // export. The very next round scales back down, which exercises the
        // cooldown rung — state that only survives through the export.
        let snapshot = mgr.export_state();
        let mut restored = ResilientManager::new(ResilienceConfig::default());
        restored.restore_state(snapshot.clone());
        assert_eq!(restored.export_state(), snapshot);

        let mut cluster_b = state.clone();
        let a = mgr.run_round(&app, &mut state, &low);
        let b = restored.run_round(&app, &mut cluster_b, &low);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.report.actions, b.report.actions);
        assert!(a
            .report
            .actions
            .iter()
            .any(|x| matches!(x, FallbackAction::CooldownHold { .. })));
    }

    #[test]
    fn crash_replacement_is_not_a_rescaling() {
        // Losing containers to a crash and re-placing them keeps the plan
        // unchanged, so hysteresis must not interfere and the report stays
        // clean (the *cluster* changed, the *plan* did not).
        let app = two_service_app(300.0, 300.0);
        let mut state = ClusterState::paper_cluster();
        let mut mgr = ResilientManager::new(ResilienceConfig::default());
        let w = workloads(&app, 20_000.0);
        let first = mgr.run_round(&app, &mut state, &w);
        let plan = first.plan.unwrap();
        let ms = app.microservice_by_name("P").unwrap();
        let lost = state.crash_containers(&app, ms, 2);
        assert_eq!(lost, 2);
        let second = mgr.run_round(&app, &mut state, &w);
        assert!(second.applied());
        assert_eq!(state.containers_of(ms), plan.containers(ms));
        assert!(
            second.provision.unwrap().placed >= 2,
            "crashed containers re-placed"
        );
    }
}
