//! Microservice dependency graphs (§2.1, Fig. 1).
//!
//! A service's dependency graph is a rooted tree of *call nodes*. Each node
//! references a deployed microservice and organises its downstream calls
//! into sequential *stages*; the calls within one stage run in parallel,
//! and stages run one after another. This captures exactly the structures
//! the paper manipulates — e.g. Fig. 7, where `T` first calls `Url` and `U`
//! in parallel and then calls `C`:
//!
//! ```text
//! T: stages = [ [Url, U],  [C] ]
//! ```
//!
//! The end-to-end latency of a request is the latency of the root node plus,
//! for every stage, the maximum subtree latency among the stage's children —
//! equivalently, the longest *critical path* through the graph (§2.1).
//!
//! Production graphs behave like trees [26], and the merge algorithm of §4.2
//! operates on two-tier invocations of a tree, so this crate represents
//! graphs as trees; a microservice shared between several call sites simply
//! appears as several nodes referencing the same [`MicroserviceId`].

use serde::{Deserialize, Serialize};

use crate::ids::{MicroserviceId, NodeId};

/// One call node in a dependency graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The microservice this node invokes.
    pub microservice: MicroserviceId,
    /// Average number of calls made to this node per service request
    /// (call multiplicity). Usually `1.0`.
    pub multiplicity: f64,
    /// Downstream call stages: stages execute sequentially, the calls inside
    /// one stage execute in parallel.
    pub stages: Vec<Vec<NodeId>>,
}

impl Node {
    fn new(microservice: MicroserviceId, multiplicity: f64) -> Self {
        Self {
            microservice,
            multiplicity,
            stages: Vec::new(),
        }
    }

    /// Iterates over all children in all stages.
    pub fn children(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.stages.iter().flatten().copied()
    }
}

/// A rooted, tree-shaped dependency graph of one service.
///
/// Construct through [`GraphBuilder`], normally via
/// [`AppBuilder::service`](crate::app::AppBuilder::service).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DependencyGraph {
    nodes: Vec<Node>,
    root: NodeId,
}

impl DependencyGraph {
    /// The entry node that receives user requests.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of call nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph; node ids are only
    /// produced by this graph's builder, so that is a programming error.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterates over `(NodeId, &Node)` pairs in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::new(i as u32), n))
    }

    /// The *effective* per-request call multiplicity of a node: the product
    /// of multiplicities along the path from the root.
    ///
    /// A node with multiplicity 2 under a parent with multiplicity 3 is
    /// invoked 6 times per service request.
    pub fn effective_multiplicity(&self, id: NodeId) -> f64 {
        // Recompute the parent chain: graphs are small and this keeps the
        // structure free of redundant cached state.
        let mut mult = vec![0.0; self.nodes.len()];
        self.fill_multiplicity(self.root, 1.0, &mut mult);
        mult[id.index()]
    }

    /// Effective multiplicities for all nodes, indexed by node id.
    pub fn effective_multiplicities(&self) -> Vec<f64> {
        let mut mult = vec![0.0; self.nodes.len()];
        self.fill_multiplicity(self.root, 1.0, &mut mult);
        mult
    }

    fn fill_multiplicity(&self, id: NodeId, acc: f64, out: &mut [f64]) {
        let node = self.node(id);
        let eff = acc * node.multiplicity;
        out[id.index()] = eff;
        for child in node.children() {
            self.fill_multiplicity(child, eff, out);
        }
    }

    /// Enumerates all critical paths (root-to-leaf microservice sequences
    /// that could determine end-to-end latency, §2.1).
    ///
    /// For every stage, the path continues through *each* parallel child in
    /// turn (any of them can be the stage maximum), and sequential stages
    /// contribute their nodes jointly; a path is therefore a choice of one
    /// child per stage, recursively. The number of paths can grow
    /// combinatorially for very bushy graphs, so this is intended for
    /// analysis and tests, not the scaling fast path.
    pub fn critical_paths(&self) -> Vec<Vec<NodeId>> {
        self.paths_from(self.root)
    }

    fn paths_from(&self, id: NodeId) -> Vec<Vec<NodeId>> {
        let node = self.node(id);
        // Paths through this node: node itself plus, for each stage, one
        // choice of child-subtree path. Cartesian product across stages.
        let mut suffixes: Vec<Vec<NodeId>> = vec![Vec::new()];
        for stage in &node.stages {
            let mut stage_paths = Vec::new();
            for &child in stage {
                stage_paths.extend(self.paths_from(child));
            }
            if stage_paths.is_empty() {
                continue;
            }
            let mut next = Vec::with_capacity(suffixes.len() * stage_paths.len());
            for prefix in &suffixes {
                for sp in &stage_paths {
                    let mut joined = prefix.clone();
                    joined.extend_from_slice(sp);
                    next.push(joined);
                }
            }
            suffixes = next;
        }
        suffixes
            .into_iter()
            .map(|mut rest| {
                let mut path = vec![id];
                path.append(&mut rest);
                path
            })
            .collect()
    }

    /// Post-order traversal (children before parents), useful for bottom-up
    /// merging.
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        self.post_order_from(self.root, &mut order);
        order
    }

    fn post_order_from(&self, id: NodeId, out: &mut Vec<NodeId>) {
        for child in self.node(id).children().collect::<Vec<_>>() {
            self.post_order_from(child, out);
        }
        out.push(id);
    }

    /// The set of distinct microservices referenced by this graph, in first
    /// appearance order.
    pub fn microservices(&self) -> Vec<MicroserviceId> {
        let mut seen = Vec::new();
        for node in &self.nodes {
            if !seen.contains(&node.microservice) {
                seen.push(node.microservice);
            }
        }
        seen
    }

    /// A cheap structural content hash (FNV-1a over the root, every node's
    /// microservice, multiplicity bits and stage layout).
    ///
    /// Two graphs with equal hashes are *probably* identical; callers that
    /// need certainty (e.g. the [`PlanCache`](crate::cache::PlanCache)) must
    /// still compare the graphs with `==` on hash collision. Equal graphs
    /// always produce equal hashes, so the hash is a valid first-level cache
    /// key for anything that is a pure function of the graph structure.
    pub fn content_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |word: u64| {
            hash ^= word;
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        mix(self.root.index() as u64);
        mix(self.nodes.len() as u64);
        for node in &self.nodes {
            mix(node.microservice.index() as u64);
            mix(node.multiplicity.to_bits());
            mix(node.stages.len() as u64);
            for stage in &node.stages {
                mix(stage.len() as u64);
                for child in stage {
                    mix(child.index() as u64);
                }
            }
        }
        hash
    }

    /// Reassembles a graph from externally stored parts (the inverse of
    /// [`iter`](Self::iter) + [`root`](Self::root)), validating the tree
    /// shape a [`GraphBuilder`] guarantees by construction: every child id
    /// in bounds, the root reachable to every node, and each node having
    /// exactly one parent. Used by snapshot/restore codecs that persist
    /// graphs outside the process.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    pub fn from_parts(nodes: Vec<Node>, root: NodeId) -> Result<Self, String> {
        if nodes.is_empty() {
            return Err("graph has no nodes".to_string());
        }
        if root.index() >= nodes.len() {
            return Err(format!(
                "root {root} out of bounds for {} nodes",
                nodes.len()
            ));
        }
        let mut parents = vec![0usize; nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            for child in node.children() {
                if child.index() >= nodes.len() {
                    return Err(format!("node {i} references out-of-bounds child {child}"));
                }
                if child.index() == root.index() {
                    return Err(format!("root {root} appears as a child of node {i}"));
                }
                parents[child.index()] += 1;
                if parents[child.index()] > 1 {
                    return Err(format!("node {child} has more than one parent"));
                }
            }
        }
        // Parent counts alone admit a cycle disconnected from the root
        // (each cycle member has exactly one parent — inside the cycle), so
        // walk from the root and require full coverage. The walk terminates
        // because a cycle *reachable* from the root would need a node with
        // two parents, which was rejected above.
        let mut visited = vec![false; nodes.len()];
        let mut stack = vec![root.index()];
        let mut seen = 0usize;
        while let Some(i) = stack.pop() {
            if visited[i] {
                continue;
            }
            visited[i] = true;
            seen += 1;
            stack.extend(nodes[i].children().map(|c| c.index()));
        }
        if seen != nodes.len() {
            return Err(format!(
                "{} of {} nodes unreachable from the root",
                nodes.len() - seen,
                nodes.len()
            ));
        }
        Ok(Self { nodes, root })
    }

    /// Total calls per service request reaching microservice `ms`
    /// (the sum of effective multiplicities of nodes that reference it).
    pub fn calls_per_request(&self, ms: MicroserviceId) -> f64 {
        let mult = self.effective_multiplicities();
        self.iter()
            .filter(|(_, n)| n.microservice == ms)
            .map(|(id, _)| mult[id.index()])
            .sum()
    }
}

/// Incrementally builds a [`DependencyGraph`].
///
/// Obtained from [`AppBuilder::service`](crate::app::AppBuilder::service);
/// see the crate-level example.
#[derive(Debug)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    root: Option<NodeId>,
}

impl GraphBuilder {
    /// Creates an empty builder. Prefer building through
    /// [`AppBuilder::service`](crate::app::AppBuilder::service), which also
    /// validates microservice ids against the application.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            root: None,
        }
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Declares the entry microservice (the graph root). May only be called
    /// once per graph.
    ///
    /// # Panics
    ///
    /// Panics if an entry node already exists — a graph has exactly one
    /// entry microservice (§2.1).
    pub fn entry(&mut self, ms: MicroserviceId) -> NodeId {
        assert!(self.root.is_none(), "graph already has an entry node");
        let id = self.push(Node::new(ms, 1.0));
        self.root = Some(id);
        id
    }

    /// Appends a new sequential stage under `parent` containing a single
    /// call to `ms`, and returns the new node.
    pub fn call_seq(&mut self, parent: NodeId, ms: MicroserviceId) -> NodeId {
        self.call_seq_n(parent, ms, 1.0)
    }

    /// Like [`call_seq`](Self::call_seq) with an explicit call multiplicity
    /// (average calls per invocation of `parent`).
    pub fn call_seq_n(&mut self, parent: NodeId, ms: MicroserviceId, multiplicity: f64) -> NodeId {
        let id = self.push(Node::new(ms, multiplicity));
        self.nodes[parent.index()].stages.push(vec![id]);
        id
    }

    /// Appends a new stage under `parent` whose calls to `mss` execute in
    /// parallel; returns the new nodes in argument order.
    pub fn call_par(&mut self, parent: NodeId, mss: &[MicroserviceId]) -> Vec<NodeId> {
        let ids: Vec<NodeId> = mss
            .iter()
            .map(|&ms| self.push(Node::new(ms, 1.0)))
            .collect();
        self.nodes[parent.index()].stages.push(ids.clone());
        ids
    }

    /// Adds one more parallel call to the *last* stage of `parent`
    /// (creating a first stage if none exists); returns the new node.
    pub fn call_in_last_stage(&mut self, parent: NodeId, ms: MicroserviceId) -> NodeId {
        let id = self.push(Node::new(ms, 1.0));
        let parent_node = &mut self.nodes[parent.index()];
        if let Some(last) = parent_node.stages.last_mut() {
            last.push(id);
        } else {
            parent_node.stages.push(vec![id]);
        }
        id
    }

    /// Finalises the graph. Returns `None` if no entry node was declared.
    pub fn build(self) -> Option<DependencyGraph> {
        let root = self.root?;
        Some(DependencyGraph {
            nodes: self.nodes,
            root,
        })
    }
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(i: u32) -> MicroserviceId {
        MicroserviceId::new(i)
    }

    /// Builds the Fig. 7 graph: T -> [Url ∥ U] then -> C.
    fn fig7() -> (DependencyGraph, [NodeId; 4]) {
        let mut g = GraphBuilder::new();
        let t = g.entry(ms(0));
        let par = g.call_par(t, &[ms(1), ms(2)]);
        let c = g.call_seq(t, ms(3));
        let graph = g.build().unwrap();
        (graph, [t, par[0], par[1], c])
    }

    #[test]
    fn fig7_critical_paths() {
        let (g, [t, url, u, c]) = fig7();
        let mut paths = g.critical_paths();
        paths.sort();
        assert_eq!(paths.len(), 2);
        assert!(paths.contains(&vec![t, url, c]));
        assert!(paths.contains(&vec![t, u, c]));
    }

    #[test]
    fn post_order_visits_children_first() {
        let (g, [t, url, u, c]) = fig7();
        let order = g.post_order();
        assert_eq!(order.len(), 4);
        assert_eq!(*order.last().unwrap(), t);
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(url) < pos(t));
        assert!(pos(u) < pos(t));
        assert!(pos(c) < pos(t));
    }

    #[test]
    fn effective_multiplicity_multiplies_down_the_tree() {
        let mut g = GraphBuilder::new();
        let a = g.entry(ms(0));
        let b = g.call_seq_n(a, ms(1), 3.0);
        let c = g.call_seq_n(b, ms(2), 2.0);
        let graph = g.build().unwrap();
        assert_eq!(graph.effective_multiplicity(a), 1.0);
        assert_eq!(graph.effective_multiplicity(b), 3.0);
        assert_eq!(graph.effective_multiplicity(c), 6.0);
    }

    #[test]
    fn calls_per_request_sums_repeat_appearances() {
        // Root calls ms(1) twice in two different stages.
        let mut g = GraphBuilder::new();
        let root = g.entry(ms(0));
        g.call_seq(root, ms(1));
        g.call_seq_n(root, ms(1), 2.0);
        let graph = g.build().unwrap();
        assert_eq!(graph.calls_per_request(ms(1)), 3.0);
        assert_eq!(graph.calls_per_request(ms(0)), 1.0);
        assert_eq!(graph.microservices(), vec![ms(0), ms(1)]);
    }

    #[test]
    fn call_in_last_stage_extends_parallel_group() {
        let mut g = GraphBuilder::new();
        let root = g.entry(ms(0));
        g.call_seq(root, ms(1));
        g.call_in_last_stage(root, ms(2));
        let graph = g.build().unwrap();
        let node = graph.node(root);
        assert_eq!(node.stages.len(), 1);
        assert_eq!(node.stages[0].len(), 2);
    }

    #[test]
    fn empty_builder_returns_none() {
        assert!(GraphBuilder::new().build().is_none());
    }

    #[test]
    #[should_panic]
    fn double_entry_panics() {
        let mut g = GraphBuilder::new();
        g.entry(ms(0));
        g.entry(ms(1));
    }

    #[test]
    fn from_parts_round_trips_a_built_graph() {
        let (g, _) = fig7();
        let nodes: Vec<Node> = g.iter().map(|(_, n)| n.clone()).collect();
        let rebuilt = DependencyGraph::from_parts(nodes, g.root()).unwrap();
        assert_eq!(rebuilt, g);
        assert_eq!(rebuilt.content_hash(), g.content_hash());
    }

    #[test]
    fn from_parts_rejects_malformed_shapes() {
        let leaf = |m: u32| Node {
            microservice: ms(m),
            multiplicity: 1.0,
            stages: Vec::new(),
        };
        let with_children = |m: u32, stages: Vec<Vec<NodeId>>| Node {
            microservice: ms(m),
            multiplicity: 1.0,
            stages,
        };
        // Empty and out-of-bounds root.
        assert!(DependencyGraph::from_parts(Vec::new(), NodeId::new(0)).is_err());
        assert!(DependencyGraph::from_parts(vec![leaf(0)], NodeId::new(1)).is_err());
        // Out-of-bounds child.
        let dangling = with_children(0, vec![vec![NodeId::new(7)]]);
        assert!(DependencyGraph::from_parts(vec![dangling], NodeId::new(0)).is_err());
        // Two parents for one node.
        let shared = with_children(0, vec![vec![NodeId::new(1)], vec![NodeId::new(1)]]);
        assert!(DependencyGraph::from_parts(vec![shared, leaf(1)], NodeId::new(0)).is_err());
        // Root as a child (cycle through the root).
        let back = with_children(0, vec![vec![NodeId::new(1)]]);
        let cyclic = with_children(1, vec![vec![NodeId::new(0)]]);
        assert!(DependencyGraph::from_parts(vec![back, cyclic], NodeId::new(0)).is_err());
        // A two-cycle disconnected from the root: every non-root node has
        // exactly one parent, so only the reachability walk catches it.
        let island_a = with_children(1, vec![vec![NodeId::new(2)]]);
        let island_b = with_children(2, vec![vec![NodeId::new(1)]]);
        assert!(
            DependencyGraph::from_parts(vec![leaf(0), island_a, island_b], NodeId::new(0)).is_err()
        );
    }

    #[test]
    fn single_node_graph_has_one_path() {
        let mut g = GraphBuilder::new();
        let root = g.entry(ms(0));
        let graph = g.build().unwrap();
        assert_eq!(graph.critical_paths(), vec![vec![root]]);
        assert_eq!(graph.len(), 1);
        assert!(!graph.is_empty());
    }
}
