//! Plan caching: memoized dependency-graph merges (Alg. 1) for repeated
//! controller rounds.
//!
//! Merging a dependency graph into virtual microservices ([`MergedGraph`])
//! is a pure function of the graph structure and the per-node
//! [`VirtualParams`]. The graph never changes between controller rounds,
//! and the folded parameters are *workload-independent for Erms' first
//! planning pass* (the slope fold `ã = a·m²·(γ_eff/γ_svc)` cancels the rate
//! when the effective workload is proportional to the service workload), so
//! an autoscaler invoked every round — by the provisioning loop, the
//! [`ResilientManager`](crate::resilience::ResilientManager) degradation
//! ladder, or a benchmark sweep — keeps re-deriving the exact same merge
//! trees. [`PlanCache`] memoizes them.
//!
//! # Keying and invalidation
//!
//! An entry is keyed by the pair *(graph content, exact parameter bits)*:
//!
//! * the graph contributes [`DependencyGraph::content_hash`] — root, node
//!   microservices, multiplicity bits and stage layout;
//! * the parameters contribute the raw IEEE-754 bits of every
//!   `(a, b, r)` triple, so two parameter vectors hit the same entry only
//!   when they are bit-identical (no epsilon comparisons — a cache hit must
//!   reproduce the cold computation exactly).
//!
//! The two hashes are combined into one 64-bit key; on lookup the stored
//! graph and parameter vector are compared against the query so a hash
//! collision degrades to a miss, never to a wrong plan. There is no
//! time-based invalidation: entries are immutable values of a pure
//! function. Anything that changes the *inputs* — editing the graph
//! topology, re-fitting latency profiles, changing interference (which
//! rescales `a`), changing call multiplicities — changes the key, so stale
//! results are unreachable by construction. [`PlanCache::clear`] exists for
//! long-lived controllers that re-profile in place and want to drop dead
//! entries eagerly.
//!
//! # Bounded memory
//!
//! A long-lived controller facing continuous workload or profile drift
//! generates an unbounded stream of *distinct* keys (every second-pass
//! parameter vector embeds the effective workloads). To keep the memo
//! table from growing without bound, the cache holds at most
//! [`capacity`](PlanCache::capacity) entries (default
//! [`PlanCache::DEFAULT_CAPACITY`]); inserting past the cap evicts the
//! **oldest** entry first (FIFO by insertion) and bumps the
//! [`evictions`](PlanCache::evictions) counter. Oldest-first matches the
//! drift access pattern: entries keyed by superseded workloads are never
//! queried again, so recency-ordering buys nothing over insertion order.
//!
//! The cache is `Sync`: lookups take a read lock and bump atomic hit/miss
//! counters, so a parallel sweep can share one cache across worker threads.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use crate::graph::DependencyGraph;
use crate::merge::{MergedGraph, VirtualParams};

/// A memo table of dependency-graph merges, shareable across threads.
///
/// See the [module docs](self) for the keying, invalidation and eviction
/// rules.
///
/// ```
/// use erms_core::cache::PlanCache;
/// use erms_core::graph::GraphBuilder;
/// use erms_core::ids::MicroserviceId;
/// use erms_core::merge::VirtualParams;
///
/// let mut g = GraphBuilder::new();
/// let root = g.entry(MicroserviceId::new(0));
/// g.call_seq(root, MicroserviceId::new(1));
/// let graph = g.build().unwrap();
/// let params = vec![VirtualParams::new(0.1, 3.0, 1.0); 2];
///
/// let cache = PlanCache::new();
/// let cold = cache.merged(&graph, &params);
/// let warm = cache.merged(&graph, &params);
/// assert_eq!(*cold, *warm);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug)]
pub struct PlanCache {
    inner: RwLock<CacheInner>,
    capacity: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<u64, Vec<CacheEntry>>,
    /// Insertion order of live entries as `(key, seq)` pairs; the front is
    /// the oldest entry and the eviction victim.
    order: VecDeque<(u64, u64)>,
    next_seq: u64,
}

#[derive(Debug)]
struct CacheEntry {
    /// Full copies of the inputs, compared on lookup so a 64-bit hash
    /// collision can never alias two different merges. Graphs are tens of
    /// nodes, so the memory cost is negligible next to the merge tree.
    graph: DependencyGraph,
    params: Vec<VirtualParams>,
    merged: Arc<MergedGraph>,
    /// Monotone insertion stamp identifying this entry in the FIFO queue.
    seq: u64,
}

impl CacheEntry {
    fn matches(&self, graph: &DependencyGraph, params: &[VirtualParams]) -> bool {
        params_bit_eq(&self.params, params) && self.graph == *graph
    }
}

/// Bitwise equality of parameter vectors: `-0.0 != 0.0` and `NaN == NaN`
/// here, deliberately — a hit must replay the exact cold inputs.
fn params_bit_eq(a: &[VirtualParams], b: &[VirtualParams]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.a.to_bits() == y.a.to_bits()
                && x.b.to_bits() == y.b.to_bits()
                && x.r.to_bits() == y.r.to_bits()
        })
}

impl PlanCache {
    /// Default entry cap: generous for a whole-cluster controller (two
    /// merge trees per service per interval pass) while bounding a
    /// drift-heavy stream to a few thousand retained trees.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache holding at most `capacity` entries.
    /// A capacity of zero disables memoization entirely (every lookup
    /// computes and nothing is retained).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: RwLock::new(CacheInner::default()),
            capacity: AtomicUsize::new(capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Changes the entry cap. Shrinking below the current size evicts
    /// oldest-first on the next insertion (not eagerly).
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
    }

    fn key(graph: &DependencyGraph, params: &[VirtualParams]) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = graph.content_hash();
        let mut mix = |word: u64| {
            hash ^= word;
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        mix(params.len() as u64);
        for p in params {
            mix(p.a.to_bits());
            mix(p.b.to_bits());
            mix(p.r.to_bits());
        }
        hash
    }

    /// Returns the merge of `graph` under `params`, computing and caching
    /// it on first use.
    ///
    /// The returned tree is shared ([`Arc`]); it is bit-identical to what
    /// [`MergedGraph::merge`] would produce, because a hit requires the
    /// stored inputs to equal the query exactly.
    ///
    /// # Panics
    ///
    /// Panics (like [`MergedGraph::merge`]) if `params.len()` differs from
    /// `graph.len()`.
    pub fn merged(&self, graph: &DependencyGraph, params: &[VirtualParams]) -> Arc<MergedGraph> {
        let key = Self::key(graph, params);
        if let Some(found) = self
            .inner
            .read()
            .expect("plan cache poisoned")
            .entries
            .get(&key)
            .and_then(|bucket| bucket.iter().find(|e| e.matches(graph, params)))
            .map(|e| Arc::clone(&e.merged))
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return found;
        }
        let merged = Arc::new(MergedGraph::merge(graph, params));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let capacity = self.capacity();
        if capacity == 0 {
            return merged;
        }
        let mut inner = self.inner.write().expect("plan cache poisoned");
        // A racing thread may have inserted the same entry between our read
        // and write; prefer the incumbent so all callers share one Arc.
        if let Some(existing) = inner
            .entries
            .get(&key)
            .and_then(|bucket| bucket.iter().find(|e| e.matches(graph, params)))
        {
            return Arc::clone(&existing.merged);
        }
        while inner.order.len() >= capacity {
            let (victim_key, victim_seq) =
                inner.order.pop_front().expect("order tracks live entries");
            if let Some(bucket) = inner.entries.get_mut(&victim_key) {
                bucket.retain(|e| e.seq != victim_seq);
                if bucket.is_empty() {
                    inner.entries.remove(&victim_key);
                }
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.order.push_back((key, seq));
        inner.entries.entry(key).or_default().push(CacheEntry {
            graph: graph.clone(),
            params: params.to_vec(),
            merged: Arc::clone(&merged),
            seq,
        });
        merged
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compute a fresh merge.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of entries evicted to respect the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache (`0.0` when unused).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Number of distinct memoized merges.
    pub fn len(&self) -> usize {
        self.inner.read().expect("plan cache poisoned").order.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the hit/miss/eviction counters. The
    /// capacity is preserved.
    pub fn clear(&self) {
        let mut inner = self.inner.write().expect("plan cache poisoned");
        inner.entries.clear();
        inner.order.clear();
        drop(inner);
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::ids::MicroserviceId;

    fn ms(i: u32) -> MicroserviceId {
        MicroserviceId::new(i)
    }

    fn chain(n: u32) -> DependencyGraph {
        let mut g = GraphBuilder::new();
        let mut parent = g.entry(ms(0));
        for i in 1..n {
            parent = g.call_seq(parent, ms(i));
        }
        g.build().unwrap()
    }

    fn params(graph: &DependencyGraph, seed: f64) -> Vec<VirtualParams> {
        (0..graph.len())
            .map(|i| VirtualParams::new(0.05 + seed * i as f64, 2.0 + i as f64, 1.0 + seed))
            .collect()
    }

    #[test]
    fn warm_lookup_is_identical_and_counted() {
        let graph = chain(4);
        let p = params(&graph, 0.01);
        let cache = PlanCache::new();
        let cold = cache.merged(&graph, &p);
        let warm = cache.merged(&graph, &p);
        assert_eq!(*cold, MergedGraph::merge(&graph, &p));
        assert!(Arc::ptr_eq(&cold, &warm));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_params_miss() {
        let graph = chain(3);
        let cache = PlanCache::new();
        cache.merged(&graph, &params(&graph, 0.01));
        cache.merged(&graph, &params(&graph, 0.02));
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn different_graphs_miss() {
        let g3 = chain(3);
        let g4 = chain(4);
        let cache = PlanCache::new();
        cache.merged(&g3, &params(&g3, 0.01));
        cache.merged(&g4, &params(&g4, 0.01));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn negative_zero_params_do_not_alias() {
        let graph = chain(2);
        let mut a = params(&graph, 0.01);
        let mut b = a.clone();
        a[0].b = 0.0;
        b[0].b = -0.0;
        let cache = PlanCache::new();
        cache.merged(&graph, &a);
        cache.merged(&graph, &b);
        assert_eq!(cache.misses(), 2, "-0.0 must not hit the 0.0 entry");
    }

    #[test]
    fn clear_resets_everything() {
        let graph = chain(3);
        let p = params(&graph, 0.01);
        let cache = PlanCache::new();
        cache.merged(&graph, &p);
        cache.merged(&graph, &p);
        cache.clear();
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 0));
        assert!(cache.is_empty());
        cache.merged(&graph, &p);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn content_hash_distinguishes_structure() {
        // Same node count and microservices, different stage layout.
        let mut g1 = GraphBuilder::new();
        let r1 = g1.entry(ms(0));
        g1.call_par(r1, &[ms(1), ms(2)]);
        let g1 = g1.build().unwrap();

        let mut g2 = GraphBuilder::new();
        let r2 = g2.entry(ms(0));
        g2.call_seq(r2, ms(1));
        g2.call_seq(r2, ms(2));
        let g2 = g2.build().unwrap();

        assert_ne!(g1.content_hash(), g2.content_hash());
        assert_eq!(g1.content_hash(), g1.clone().content_hash());
    }

    #[test]
    fn shared_across_threads() {
        let graph = chain(5);
        let p = params(&graph, 0.01);
        let cache = PlanCache::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..16 {
                        cache.merged(&graph, &p);
                    }
                });
            }
        });
        assert_eq!(cache.hits() + cache.misses(), 64);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capped_under_mutation_stream() {
        // A drift stream: every round re-merges under fresh parameters, so
        // every lookup is a distinct key. The cache must stay at its cap,
        // evicting oldest-first and counting every eviction.
        let graph = chain(4);
        let cache = PlanCache::with_capacity(8);
        assert_eq!(cache.capacity(), 8);
        let versions: Vec<Vec<VirtualParams>> = (0..50)
            .map(|i| params(&graph, 0.001 * (i + 1) as f64))
            .collect();
        for p in &versions {
            cache.merged(&graph, p);
        }
        assert_eq!(cache.len(), 8, "size must stay at the cap");
        assert_eq!(cache.misses(), 50);
        assert_eq!(cache.evictions(), 42);
        // The newest 8 versions survive; everything older was evicted.
        let hits_before = cache.hits();
        for p in &versions[42..] {
            cache.merged(&graph, p);
        }
        assert_eq!(cache.hits(), hits_before + 8, "newest entries must survive");
        cache.merged(&graph, &versions[0]);
        assert_eq!(
            cache.hits(),
            hits_before + 8,
            "oldest entry must have been evicted"
        );
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let graph = chain(3);
        let p = params(&graph, 0.01);
        let cache = PlanCache::with_capacity(0);
        let a = cache.merged(&graph, &p);
        let b = cache.merged(&graph, &p);
        assert_eq!(*a, *b);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn shrinking_capacity_applies_on_insert() {
        let graph = chain(4);
        let cache = PlanCache::with_capacity(16);
        for i in 0..10 {
            cache.merged(&graph, &params(&graph, 0.001 * (i + 1) as f64));
        }
        assert_eq!(cache.len(), 10);
        cache.set_capacity(4);
        // Not eager: shrink takes effect on the next insertion.
        assert_eq!(cache.len(), 10);
        cache.merged(&graph, &params(&graph, 0.5));
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.evictions(), 7);
    }
}
