//! Plan caching: memoized dependency-graph merges (Alg. 1) for repeated
//! controller rounds.
//!
//! Merging a dependency graph into virtual microservices ([`MergedGraph`])
//! is a pure function of the graph structure and the per-node
//! [`VirtualParams`]. The graph never changes between controller rounds,
//! and the folded parameters are *workload-independent for Erms' first
//! planning pass* (the slope fold `ã = a·m²·(γ_eff/γ_svc)` cancels the rate
//! when the effective workload is proportional to the service workload), so
//! an autoscaler invoked every round — by the provisioning loop, the
//! [`ResilientManager`](crate::resilience::ResilientManager) degradation
//! ladder, or a benchmark sweep — keeps re-deriving the exact same merge
//! trees. [`PlanCache`] memoizes them.
//!
//! # Keying and invalidation
//!
//! An entry is keyed by the pair *(graph content, exact parameter bits)*:
//!
//! * the graph contributes [`DependencyGraph::content_hash`] — root, node
//!   microservices, multiplicity bits and stage layout;
//! * the parameters contribute the raw IEEE-754 bits of every
//!   `(a, b, r)` triple, so two parameter vectors hit the same entry only
//!   when they are bit-identical (no epsilon comparisons — a cache hit must
//!   reproduce the cold computation exactly).
//!
//! The two hashes are combined into one 64-bit key; on lookup the stored
//! graph and parameter vector are compared against the query so a hash
//! collision degrades to a miss, never to a wrong plan. There is no
//! time-based invalidation: entries are immutable values of a pure
//! function. Anything that changes the *inputs* — editing the graph
//! topology, re-fitting latency profiles, changing interference (which
//! rescales `a`), changing call multiplicities — changes the key, so stale
//! results are unreachable by construction. [`PlanCache::clear`] exists for
//! long-lived controllers that re-profile in place and want to drop dead
//! entries eagerly.
//!
//! The cache is `Sync`: lookups take a read lock and bump atomic hit/miss
//! counters, so a parallel sweep can share one cache across worker threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::graph::DependencyGraph;
use crate::merge::{MergedGraph, VirtualParams};

/// A memo table of dependency-graph merges, shareable across threads.
///
/// See the [module docs](self) for the keying and invalidation rules.
///
/// ```
/// use erms_core::cache::PlanCache;
/// use erms_core::graph::GraphBuilder;
/// use erms_core::ids::MicroserviceId;
/// use erms_core::merge::VirtualParams;
///
/// let mut g = GraphBuilder::new();
/// let root = g.entry(MicroserviceId::new(0));
/// g.call_seq(root, MicroserviceId::new(1));
/// let graph = g.build().unwrap();
/// let params = vec![VirtualParams::new(0.1, 3.0, 1.0); 2];
///
/// let cache = PlanCache::new();
/// let cold = cache.merged(&graph, &params);
/// let warm = cache.merged(&graph, &params);
/// assert_eq!(*cold, *warm);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: RwLock<HashMap<u64, Vec<CacheEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug)]
struct CacheEntry {
    /// Full copies of the inputs, compared on lookup so a 64-bit hash
    /// collision can never alias two different merges. Graphs are tens of
    /// nodes, so the memory cost is negligible next to the merge tree.
    graph: DependencyGraph,
    params: Vec<VirtualParams>,
    merged: Arc<MergedGraph>,
}

impl CacheEntry {
    fn matches(&self, graph: &DependencyGraph, params: &[VirtualParams]) -> bool {
        params_bit_eq(&self.params, params) && self.graph == *graph
    }
}

/// Bitwise equality of parameter vectors: `-0.0 != 0.0` and `NaN == NaN`
/// here, deliberately — a hit must replay the exact cold inputs.
fn params_bit_eq(a: &[VirtualParams], b: &[VirtualParams]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.a.to_bits() == y.a.to_bits()
                && x.b.to_bits() == y.b.to_bits()
                && x.r.to_bits() == y.r.to_bits()
        })
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(graph: &DependencyGraph, params: &[VirtualParams]) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = graph.content_hash();
        let mut mix = |word: u64| {
            hash ^= word;
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        mix(params.len() as u64);
        for p in params {
            mix(p.a.to_bits());
            mix(p.b.to_bits());
            mix(p.r.to_bits());
        }
        hash
    }

    /// Returns the merge of `graph` under `params`, computing and caching
    /// it on first use.
    ///
    /// The returned tree is shared ([`Arc`]); it is bit-identical to what
    /// [`MergedGraph::merge`] would produce, because a hit requires the
    /// stored inputs to equal the query exactly.
    ///
    /// # Panics
    ///
    /// Panics (like [`MergedGraph::merge`]) if `params.len()` differs from
    /// `graph.len()`.
    pub fn merged(&self, graph: &DependencyGraph, params: &[VirtualParams]) -> Arc<MergedGraph> {
        let key = Self::key(graph, params);
        if let Some(found) = self
            .entries
            .read()
            .expect("plan cache poisoned")
            .get(&key)
            .and_then(|bucket| bucket.iter().find(|e| e.matches(graph, params)))
            .map(|e| Arc::clone(&e.merged))
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return found;
        }
        let merged = Arc::new(MergedGraph::merge(graph, params));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.write().expect("plan cache poisoned");
        let bucket = entries.entry(key).or_default();
        // A racing thread may have inserted the same entry between our read
        // and write; prefer the incumbent so all callers share one Arc.
        if let Some(existing) = bucket.iter().find(|e| e.matches(graph, params)) {
            return Arc::clone(&existing.merged);
        }
        bucket.push(CacheEntry {
            graph: graph.clone(),
            params: params.to_vec(),
            merged: Arc::clone(&merged),
        });
        merged
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compute a fresh merge.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache (`0.0` when unused).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Number of distinct memoized merges.
    pub fn len(&self) -> usize {
        self.entries
            .read()
            .expect("plan cache poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the hit/miss counters.
    pub fn clear(&self) {
        self.entries.write().expect("plan cache poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::ids::MicroserviceId;

    fn ms(i: u32) -> MicroserviceId {
        MicroserviceId::new(i)
    }

    fn chain(n: u32) -> DependencyGraph {
        let mut g = GraphBuilder::new();
        let mut parent = g.entry(ms(0));
        for i in 1..n {
            parent = g.call_seq(parent, ms(i));
        }
        g.build().unwrap()
    }

    fn params(graph: &DependencyGraph, seed: f64) -> Vec<VirtualParams> {
        (0..graph.len())
            .map(|i| VirtualParams::new(0.05 + seed * i as f64, 2.0 + i as f64, 1.0 + seed))
            .collect()
    }

    #[test]
    fn warm_lookup_is_identical_and_counted() {
        let graph = chain(4);
        let p = params(&graph, 0.01);
        let cache = PlanCache::new();
        let cold = cache.merged(&graph, &p);
        let warm = cache.merged(&graph, &p);
        assert_eq!(*cold, MergedGraph::merge(&graph, &p));
        assert!(Arc::ptr_eq(&cold, &warm));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_params_miss() {
        let graph = chain(3);
        let cache = PlanCache::new();
        cache.merged(&graph, &params(&graph, 0.01));
        cache.merged(&graph, &params(&graph, 0.02));
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn different_graphs_miss() {
        let g3 = chain(3);
        let g4 = chain(4);
        let cache = PlanCache::new();
        cache.merged(&g3, &params(&g3, 0.01));
        cache.merged(&g4, &params(&g4, 0.01));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn negative_zero_params_do_not_alias() {
        let graph = chain(2);
        let mut a = params(&graph, 0.01);
        let mut b = a.clone();
        a[0].b = 0.0;
        b[0].b = -0.0;
        let cache = PlanCache::new();
        cache.merged(&graph, &a);
        cache.merged(&graph, &b);
        assert_eq!(cache.misses(), 2, "-0.0 must not hit the 0.0 entry");
    }

    #[test]
    fn clear_resets_everything() {
        let graph = chain(3);
        let p = params(&graph, 0.01);
        let cache = PlanCache::new();
        cache.merged(&graph, &p);
        cache.merged(&graph, &p);
        cache.clear();
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 0));
        assert!(cache.is_empty());
        cache.merged(&graph, &p);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn content_hash_distinguishes_structure() {
        // Same node count and microservices, different stage layout.
        let mut g1 = GraphBuilder::new();
        let r1 = g1.entry(ms(0));
        g1.call_par(r1, &[ms(1), ms(2)]);
        let g1 = g1.build().unwrap();

        let mut g2 = GraphBuilder::new();
        let r2 = g2.entry(ms(0));
        g2.call_seq(r2, ms(1));
        g2.call_seq(r2, ms(2));
        let g2 = g2.build().unwrap();

        assert_ne!(g1.content_hash(), g2.content_hash());
        assert_eq!(g1.content_hash(), g1.clone().content_hash());
    }

    #[test]
    fn shared_across_threads() {
        let graph = chain(5);
        let p = params(&graph, 0.01);
        let cache = PlanCache::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..16 {
                        cache.merged(&graph, &p);
                    }
                });
            }
        });
        assert_eq!(cache.hits() + cache.misses(), 64);
        assert_eq!(cache.len(), 1);
    }
}
