//! Error types shared across the Erms workspace.

use std::fmt;

use crate::ids::{MicroserviceId, ServiceId};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by Erms core algorithms.
///
/// Every public fallible function in this crate returns [`Error`]. The
/// variants carry enough context to diagnose which service or microservice
/// made a request infeasible.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The SLA of a service is smaller than the sum of unavoidable latency
    /// intercepts along its worst path, so no finite container allocation can
    /// satisfy it.
    SlaInfeasible {
        /// Service whose SLA cannot be met.
        service: ServiceId,
        /// The SLA threshold requested, in milliseconds.
        sla_ms: f64,
        /// The minimum achievable end-to-end latency (sum of intercepts on
        /// the worst path), in milliseconds.
        floor_ms: f64,
    },
    /// A service dependency graph has no nodes.
    EmptyGraph {
        /// The offending service.
        service: ServiceId,
    },
    /// A microservice id does not exist in the application.
    UnknownMicroservice(MicroserviceId),
    /// A service id does not exist in the application.
    UnknownService(ServiceId),
    /// A latency profile has invalid parameters (negative slope, NaN, …).
    InvalidProfile {
        /// The offending microservice.
        microservice: MicroserviceId,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// A workload, multiplicity, resource size or other numeric argument was
    /// not finite and positive where required.
    InvalidParameter(String),
    /// No workload was supplied for a service that must be scaled.
    MissingWorkload(ServiceId),
    /// The provisioner was asked to place more containers than the cluster
    /// can hold.
    InsufficientCapacity {
        /// CPU cores requested.
        requested_cpu: f64,
        /// CPU cores available.
        available_cpu: f64,
    },
    /// A microservice that must serve workload was deployed with zero
    /// containers — a configuration error, distinct from losing capacity
    /// mid-run (which surfaces as dropped requests, not an error).
    ZeroContainers {
        /// The microservice with workload but no containers.
        microservice: MicroserviceId,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SlaInfeasible {
                service,
                sla_ms,
                floor_ms,
            } => write!(
                f,
                "SLA of {sla_ms} ms for service {service} is below the latency floor of {floor_ms} ms"
            ),
            Error::EmptyGraph { service } => {
                write!(f, "dependency graph of service {service} is empty")
            }
            Error::UnknownMicroservice(id) => write!(f, "unknown microservice {id}"),
            Error::UnknownService(id) => write!(f, "unknown service {id}"),
            Error::InvalidProfile {
                microservice,
                reason,
            } => write!(f, "invalid latency profile for {microservice}: {reason}"),
            Error::InvalidParameter(reason) => write!(f, "invalid parameter: {reason}"),
            Error::MissingWorkload(id) => write!(f, "no workload supplied for service {id}"),
            Error::InsufficientCapacity {
                requested_cpu,
                available_cpu,
            } => write!(
                f,
                "placement requires {requested_cpu} CPU cores but only {available_cpu} are available"
            ),
            Error::ZeroContainers { microservice } => write!(
                f,
                "microservice {microservice} must serve workload but has zero containers"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ids() {
        let err = Error::SlaInfeasible {
            service: ServiceId::new(3),
            sla_ms: 50.0,
            floor_ms: 80.0,
        };
        let text = err.to_string();
        assert!(text.contains("50"));
        assert!(text.contains("80"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
