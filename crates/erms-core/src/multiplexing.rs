//! Shared-microservice multiplexing: priority scheduling and the
//! Theorem-1 resource-usage comparisons (§2.3, §4.3, §5.3.2, Appendix A).
//!
//! A microservice shared by several services must decide how to order
//! concurrent requests. Erms:
//!
//! 1. computes an *initial* latency target per service
//!    ([`plan_service`](crate::scaling::plan_service) with each service's own
//!    workload);
//! 2. gives the service with the **lower** initial latency target at a
//!    shared microservice the **higher** priority — a low target signals
//!    that the service is full of latency-sensitive microservices
//!    (§5.3.2);
//! 3. recomputes every service's targets with *modified workloads*: at a
//!    shared microservice, service `k` experiences the cumulative rate
//!    `Σ_{l ≤ k} γ_{l,i}` of all higher-or-equal-priority services, because
//!    its requests wait behind theirs (Eqs. 13–14).
//!
//! [`SharingScenario`] reproduces the paper's analytic comparison (Fig. 5,
//! Theorem 1) between FCFS sharing, non-sharing partitioning, and priority
//! scheduling; [`mm1`] holds the M/M/1 sanity analysis of §2.3.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::app::{App, WorkloadVector};
use crate::error::Result;
use crate::ids::{MicroserviceId, ServiceId};
use crate::scaling::{EffectiveWorkloads, ServicePlan};

/// Orders services at every shared microservice by their initial latency
/// targets: lower target first (= higher priority).
///
/// `initial_plans` must contain a [`ServicePlan`] for every service that
/// references a shared microservice; services without a plan (e.g. idle
/// ones) are placed last. Ties break by service id for determinism.
pub fn assign_priorities(
    app: &App,
    initial_plans: &BTreeMap<ServiceId, ServicePlan>,
) -> BTreeMap<MicroserviceId, Vec<ServiceId>> {
    let mut priorities = BTreeMap::new();
    for ms in app.shared_microservices() {
        let mut users = app.services_using(ms);
        users.sort_by(|&x, &y| {
            let tx = initial_plans
                .get(&x)
                .and_then(|p| p.ms_targets_ms.get(&ms))
                .copied()
                .unwrap_or(f64::INFINITY);
            let ty = initial_plans
                .get(&y)
                .and_then(|p| p.ms_targets_ms.get(&ms))
                .copied()
                .unwrap_or(f64::INFINITY);
            tx.partial_cmp(&ty)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.cmp(&y))
        });
        priorities.insert(ms, users);
    }
    priorities
}

/// Builds the modified effective-workload map of one service under
/// priority scheduling (§5.3.2): at every shared microservice the service
/// experiences the cumulative call rate of all services with equal or
/// higher priority; at exclusive microservices it experiences its own
/// rate.
///
/// # Errors
///
/// Propagates id lookup failures from the app.
pub fn cumulative_workloads(
    app: &App,
    service: ServiceId,
    workloads: &WorkloadVector,
    priorities: &BTreeMap<MicroserviceId, Vec<ServiceId>>,
) -> Result<EffectiveWorkloads> {
    let svc = app.service(service)?;
    let own_rate = workloads.rate(service).as_per_minute();
    let mut eff = EffectiveWorkloads::new();
    for ms in svc.graph.microservices() {
        let own = own_rate * svc.graph.calls_per_request(ms);
        let value = match priorities.get(&ms) {
            Some(order) => {
                // Sum over services ordered before (and including) this one.
                let mut acc = 0.0;
                for &other in order {
                    let other_svc = app.service(other)?;
                    acc += workloads.rate(other).as_per_minute()
                        * other_svc.graph.calls_per_request(ms);
                    if other == service {
                        break;
                    }
                }
                acc
            }
            None => own,
        };
        eff.insert(ms, value);
    }
    Ok(eff)
}

/// Total workloads per microservice (FCFS sharing: every request waits
/// behind the full arrival stream).
pub fn total_workloads(
    app: &App,
    service: ServiceId,
    workloads: &WorkloadVector,
) -> Result<EffectiveWorkloads> {
    let svc = app.service(service)?;
    Ok(svc
        .graph
        .microservices()
        .into_iter()
        .map(|ms| (ms, app.microservice_workload(ms, workloads)))
        .collect())
}

/// The two-service sharing scenario of Fig. 5 / Appendix A: service 1 calls
/// `U → P`, service 2 calls `H → P`, with `P` shared.
///
/// All slopes `a` are in ms per (call/min per container), intercepts `b` in
/// ms, resource demands `r` in dominant-share units, and workloads `γ` in
/// calls/min.
///
/// ```
/// use erms_core::multiplexing::SharingScenario;
///
/// let s = SharingScenario {
///     u: (0.08, 3.0, 0.1),
///     h: (0.02, 3.0, 0.1),
///     p: (0.03, 2.0, 0.1),
///     gamma1: 40_000.0,
///     gamma2: 40_000.0,
///     sla1: 300.0,
///     sla2: 300.0,
/// };
/// let cmp = s.compare().expect("feasible");
/// // Theorem 1: priority <= non-sharing <= FCFS sharing.
/// assert!(cmp.priority <= cmp.non_sharing);
/// assert!(cmp.non_sharing <= cmp.sharing_fcfs);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharingScenario {
    /// Slope, intercept and container demand of microservice `U`.
    pub u: (f64, f64, f64),
    /// Slope, intercept and container demand of microservice `H`.
    pub h: (f64, f64, f64),
    /// Slope, intercept and container demand of the shared microservice `P`.
    pub p: (f64, f64, f64),
    /// Workload of service 1 (calls/min).
    pub gamma1: f64,
    /// Workload of service 2 (calls/min).
    pub gamma2: f64,
    /// SLA of service 1 (ms).
    pub sla1: f64,
    /// SLA of service 2 (ms).
    pub sla2: f64,
}

impl SharingScenario {
    fn slack1(&self) -> f64 {
        self.sla1 - self.u.1 - self.p.1
    }

    fn slack2(&self) -> f64 {
        self.sla2 - self.h.1 - self.p.1
    }

    fn feasible(&self) -> bool {
        self.slack1() > 0.0 && self.slack2() > 0.0 && self.gamma1 >= 0.0 && self.gamma2 >= 0.0
    }

    /// Optimal resource usage under FCFS sharing (both services experience
    /// `γ₁+γ₂` at `P`; Eq. 16). Solved exactly by a 1-D convex search over
    /// the latency `P` contributes.
    ///
    /// Returns `None` when either SLA is infeasible.
    pub fn ru_sharing_fcfs(&self) -> Option<f64> {
        if !self.feasible() {
            return None;
        }
        let (a_u, _, r_u) = self.u;
        let (a_h, _, r_h) = self.h;
        let (a_p, _, r_p) = self.p;
        let total = self.gamma1 + self.gamma2;
        let (s1, s2) = (self.slack1(), self.slack2());
        let cap = s1.min(s2);
        // t = a_p * total / n_p is the P-latency both services see.
        let ru = |t: f64| {
            a_p * total / t * r_p
                + a_u * self.gamma1 / (s1 - t) * r_u
                + a_h * self.gamma2 / (s2 - t) * r_h
        };
        Some(golden_min(ru, 1e-9 * cap, cap * (1.0 - 1e-9)))
    }

    /// Optimal resource usage when `P`'s containers are partitioned per
    /// service (non-sharing; Eq. 18): two independent chains solved in
    /// closed form.
    pub fn ru_non_sharing(&self) -> Option<f64> {
        if !self.feasible() {
            return None;
        }
        let (a_u, _, r_u) = self.u;
        let (a_h, _, r_h) = self.h;
        let (a_p, _, r_p) = self.p;
        let ru1 = {
            let s = (a_u * self.gamma1 * r_u).sqrt() + (a_p * self.gamma1 * r_p).sqrt();
            s * s / self.slack1()
        };
        let ru2 = {
            let s = (a_h * self.gamma2 * r_h).sqrt() + (a_p * self.gamma2 * r_p).sqrt();
            s * s / self.slack2()
        };
        Some(ru1 + ru2)
    }

    /// Optimal resource usage under Erms priority scheduling (service 1
    /// prioritised at `P`; Eqs. 13–14), solved exactly by a 1-D convex
    /// search over `n_p`'s latency contribution to service 1.
    pub fn ru_priority(&self) -> Option<f64> {
        if !self.feasible() {
            return None;
        }
        let (a_u, _, r_u) = self.u;
        let (a_h, _, r_h) = self.h;
        let (a_p, _, r_p) = self.p;
        let total = self.gamma1 + self.gamma2;
        let (s1, s2) = (self.slack1(), self.slack2());
        // t1 = a_p*γ1/n_p (P latency seen by service 1);
        // service 2 sees t2 = t1 * total/γ1.
        if self.gamma1 <= 0.0 {
            // Degenerate: service 1 idle, single chain for service 2.
            let s = (a_h * self.gamma2 * r_h).sqrt() + (a_p * self.gamma2 * r_p).sqrt();
            return Some(s * s / s2);
        }
        let ratio = total / self.gamma1;
        let cap = s1.min(s2 / ratio);
        let ru = |t1: f64| {
            let n_p = a_p * self.gamma1 / t1;
            let t2 = t1 * ratio;
            n_p * r_p + a_u * self.gamma1 / (s1 - t1) * r_u + a_h * self.gamma2 / (s2 - t2) * r_h
        };
        Some(golden_min(ru, 1e-9 * cap, cap * (1.0 - 1e-9)))
    }

    /// The scenario with the two services exchanged (service 2 becomes the
    /// prioritised one).
    #[must_use]
    pub fn swapped(&self) -> SharingScenario {
        SharingScenario {
            u: self.h,
            h: self.u,
            gamma1: self.gamma2,
            gamma2: self.gamma1,
            sla1: self.sla2,
            sla2: self.sla1,
            ..*self
        }
    }

    /// Optimal resource usage under priority scheduling with the *better*
    /// of the two priority orders — this is what Erms does: the service
    /// whose initial latency target at the shared microservice is lower
    /// gets priority (§5.3.2), which coincides with the cheaper order.
    pub fn ru_priority_best(&self) -> Option<f64> {
        let a = self.ru_priority()?;
        let b = self.swapped().ru_priority()?;
        Some(a.min(b))
    }

    /// The closed-form upper bound on priority-scheduling resource usage
    /// from Eq. (19) of Appendix A (valid in the symmetric-slack setting
    /// analysed there).
    pub fn ru_priority_upper_bound(&self) -> Option<f64> {
        if !self.feasible() {
            return None;
        }
        let (a_u, _, r_u) = self.u;
        let (a_h, _, r_h) = self.h;
        let (a_p, _, r_p) = self.p;
        let total = self.gamma1 + self.gamma2;
        let s = (a_h * self.gamma2 * r_h).sqrt() + (a_p * total * r_p).sqrt();
        Some(
            s * s / self.slack1()
                + a_u * self.gamma1 * r_u
                + (a_u * a_p * r_u * r_p).sqrt() * self.gamma1,
        )
    }

    /// Evaluates all three schemes; the Theorem-1 ordering is
    /// `priority ≤ non_sharing ≤ sharing_fcfs` in the symmetric-slack
    /// setting of Appendix A. Priority scheduling uses the better of the
    /// two orders ([`ru_priority_best`](Self::ru_priority_best)), as Erms'
    /// target-driven priority assignment would.
    pub fn compare(&self) -> Option<SchemeComparison> {
        Some(SchemeComparison {
            sharing_fcfs: self.ru_sharing_fcfs()?,
            non_sharing: self.ru_non_sharing()?,
            priority: self.ru_priority_best()?,
        })
    }
}

/// Resource usage of the three scheduling schemes at a shared microservice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemeComparison {
    /// FCFS sharing (scheme ① of Fig. 5).
    pub sharing_fcfs: f64,
    /// Container partitioning (scheme ② of Fig. 5).
    pub non_sharing: f64,
    /// Erms priority scheduling (scheme ③ of Fig. 5).
    pub priority: f64,
}

/// Golden-section search for the minimum of a unimodal function on
/// `[lo, hi]`.
fn golden_min(f: impl Fn(f64) -> f64, lo: f64, hi: f64) -> f64 {
    const PHI: f64 = 0.618_033_988_749_894_9;
    let (mut lo, mut hi) = (lo, hi);
    let mut x1 = hi - PHI * (hi - lo);
    let mut x2 = lo + PHI * (hi - lo);
    let (mut f1, mut f2) = (f(x1), f(x2));
    for _ in 0..200 {
        if (hi - lo).abs() < 1e-12 * (1.0 + hi.abs()) {
            break;
        }
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - PHI * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + PHI * (hi - lo);
            f2 = f(x2);
        }
    }
    f(0.5 * (lo + hi))
}

/// M/M/1 and M/M/c sanity analysis used in §2.3: *sharing* a fixed amount
/// of serving capacity achieves a lower mean response time than
/// partitioning it, even though SLA-driven scaling can still favour
/// separation.
pub mod mm1 {
    /// Mean response time of an M/M/1 queue with arrival rate `lambda` and
    /// service rate `mu` (same time unit), `W = 1/(μ − λ)`.
    ///
    /// Returns `None` for an overloaded queue (`λ ≥ μ`).
    pub fn mean_response_time(lambda: f64, mu: f64) -> Option<f64> {
        if lambda < mu && mu > 0.0 {
            Some(1.0 / (mu - lambda))
        } else {
            None
        }
    }

    /// Mean response time when two Poisson streams (`λ₁`, `λ₂`) *share* one
    /// queue whose service rate is the pooled capacity `μ₁+μ₂`.
    pub fn pooled(lambda1: f64, lambda2: f64, mu1: f64, mu2: f64) -> Option<f64> {
        mean_response_time(lambda1 + lambda2, mu1 + mu2)
    }

    /// Workload-weighted mean response time when the streams are served by
    /// *partitioned* capacities `μ₁` and `μ₂`.
    pub fn partitioned(lambda1: f64, lambda2: f64, mu1: f64, mu2: f64) -> Option<f64> {
        let w1 = mean_response_time(lambda1, mu1)?;
        let w2 = mean_response_time(lambda2, mu2)?;
        let total = lambda1 + lambda2;
        if total <= 0.0 {
            return Some(0.0);
        }
        Some((lambda1 * w1 + lambda2 * w2) / total)
    }

    /// Erlang-C: the probability that an arriving request must queue in an
    /// M/M/c system with `c` servers, arrival rate `lambda` and per-server
    /// service rate `mu`.
    ///
    /// Returns `None` for an unstable system (`λ ≥ c·μ`). This is the
    /// queueing-theoretic analogue of the container thread pools in
    /// `erms-sim`: the knee of the Fig. 3 latency curves is where this
    /// probability starts to matter.
    pub fn erlang_c(c: usize, lambda: f64, mu: f64) -> Option<f64> {
        if c == 0 || mu <= 0.0 || lambda < 0.0 {
            return None;
        }
        let a = lambda / mu; // offered load in Erlangs
        let rho = a / c as f64;
        if rho >= 1.0 {
            return None;
        }
        // Iterative Erlang-B, then convert to Erlang-C (numerically stable
        // for large c, no factorials).
        let mut b = 1.0;
        for k in 1..=c {
            b = a * b / (k as f64 + a * b);
        }
        Some(b / (1.0 - rho * (1.0 - b)))
    }

    /// Mean response time of an M/M/c queue (service + expected wait).
    ///
    /// Returns `None` for an unstable system.
    pub fn mmc_mean_response_time(c: usize, lambda: f64, mu: f64) -> Option<f64> {
        let pw = erlang_c(c, lambda, mu)?;
        let rho = lambda / (c as f64 * mu);
        Some(1.0 / mu + pw / (c as f64 * mu * (1.0 - rho)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppBuilder, RequestRate, Sla};
    use crate::latency::{Interference, LatencyProfile};
    use crate::resources::Resources;
    use crate::scaling::{own_workloads, plan_service, ScalerConfig};

    fn fig5_scenario() -> SharingScenario {
        SharingScenario {
            u: (0.08, 3.0, 0.1),
            h: (0.02, 3.0, 0.1),
            p: (0.03, 2.0, 0.1),
            gamma1: 40_000.0,
            gamma2: 40_000.0,
            sla1: 300.0,
            sla2: 300.0,
        }
    }

    #[test]
    fn theorem1_ordering_holds() {
        let cmp = fig5_scenario().compare().unwrap();
        assert!(
            cmp.priority <= cmp.non_sharing + 1e-9,
            "priority {} vs non-sharing {}",
            cmp.priority,
            cmp.non_sharing
        );
        assert!(
            cmp.non_sharing <= cmp.sharing_fcfs + 1e-9,
            "non-sharing {} vs sharing {}",
            cmp.non_sharing,
            cmp.sharing_fcfs
        );
    }

    #[test]
    fn upper_bound_bounds_priority() {
        let s = fig5_scenario();
        let exact = s.ru_priority().unwrap();
        let bound = s.ru_priority_upper_bound().unwrap();
        assert!(exact <= bound + 1e-6, "exact {exact} bound {bound}");
    }

    #[test]
    fn equal_sensitivity_closes_the_gap() {
        // Theorem 1's equality condition: a_u·R_u = a_h·R_h makes
        // non-sharing equal to FCFS sharing.
        let mut s = fig5_scenario();
        s.h = s.u;
        s.sla2 = s.sla1;
        let cmp = s.compare().unwrap();
        assert!(
            (cmp.non_sharing - cmp.sharing_fcfs).abs() / cmp.sharing_fcfs < 1e-3,
            "{cmp:?}"
        );
    }

    #[test]
    fn infeasible_scenario_returns_none() {
        let mut s = fig5_scenario();
        s.sla1 = 4.0; // below b_u + b_p = 5
        assert!(s.ru_sharing_fcfs().is_none());
        assert!(s.ru_non_sharing().is_none());
        assert!(s.ru_priority().is_none());
        assert!(s.compare().is_none());
    }

    #[test]
    fn mm1_sharing_beats_partitioning_in_mean() {
        // §2.3: pooling capacity is better for the mean processing time.
        let pooled = mm1::pooled(40.0, 40.0, 50.0, 50.0).unwrap();
        let parted = mm1::partitioned(40.0, 40.0, 50.0, 50.0).unwrap();
        assert!(pooled < parted, "pooled {pooled} vs partitioned {parted}");
    }

    #[test]
    fn mm1_overload_is_none() {
        assert!(mm1::mean_response_time(10.0, 10.0).is_none());
        assert!(mm1::mean_response_time(11.0, 10.0).is_none());
    }

    #[test]
    fn erlang_c_single_server_matches_mm1() {
        // For c = 1 the queueing probability is ρ and the mean response
        // time is 1/(μ−λ).
        let (lambda, mu) = (4.0, 5.0);
        let pw = mm1::erlang_c(1, lambda, mu).unwrap();
        assert!((pw - lambda / mu).abs() < 1e-12);
        let w = mm1::mmc_mean_response_time(1, lambda, mu).unwrap();
        assert!((w - 1.0 / (mu - lambda)).abs() < 1e-9);
    }

    #[test]
    fn erlang_c_decreases_with_servers() {
        let lambda = 8.0;
        let mu = 1.0;
        let p10 = mm1::erlang_c(10, lambda, mu).unwrap();
        let p20 = mm1::erlang_c(20, lambda, mu).unwrap();
        assert!(p20 < p10, "more servers, less queueing: {p20} vs {p10}");
        assert!((0.0..=1.0).contains(&p10));
    }

    #[test]
    fn erlang_c_unstable_is_none() {
        assert!(mm1::erlang_c(2, 2.0, 1.0).is_none());
        assert!(mm1::erlang_c(0, 1.0, 1.0).is_none());
        assert!(mm1::mmc_mean_response_time(4, 4.0, 1.0).is_none());
    }

    #[test]
    fn pooled_mmc_beats_partitioned_mm1_pair() {
        // Two M/M/1 queues at ρ=0.8 vs one M/M/2 with the pooled stream:
        // the pooled system has strictly lower mean response time — the
        // §2.3 observation, in M/M/c form.
        let (lambda, mu) = (0.8, 1.0);
        let separate = mm1::mean_response_time(lambda, mu).unwrap();
        let pooled = mm1::mmc_mean_response_time(2, 2.0 * lambda, mu).unwrap();
        assert!(pooled < separate, "pooled {pooled} vs separate {separate}");
    }

    fn sharing_app() -> (App, [MicroserviceId; 3], [ServiceId; 2]) {
        let mut b = AppBuilder::new("fig5");
        let u = b.microservice("U", LatencyProfile::linear(0.08, 3.0), Resources::default());
        let h = b.microservice("H", LatencyProfile::linear(0.02, 3.0), Resources::default());
        let p = b.microservice("P", LatencyProfile::linear(0.03, 2.0), Resources::default());
        let s1 = b.service("svc1", Sla::p95_ms(300.0), |g| {
            let root = g.entry(u);
            g.call_seq(root, p);
        });
        let s2 = b.service("svc2", Sla::p95_ms(300.0), |g| {
            let root = g.entry(h);
            g.call_seq(root, p);
        });
        (b.build().unwrap(), [u, h, p], [s1, s2])
    }

    #[test]
    fn priorities_prefer_lower_target() {
        let (app, [_, _, p], [s1, s2]) = sharing_app();
        let rate = RequestRate::per_minute(40_000.0);
        let cfg = ScalerConfig::default();
        let mut plans = BTreeMap::new();
        for svc in [s1, s2] {
            let eff = own_workloads(&app, svc, rate).unwrap();
            plans.insert(
                svc,
                plan_service(&app, svc, rate, &eff, Interference::default(), &cfg).unwrap(),
            );
        }
        // Service 1 contains the more sensitive U, so P gets a *lower*
        // target there (Eq. 5 shifts budget to U) -> service 1 first.
        let priorities = assign_priorities(&app, &plans);
        assert_eq!(priorities[&p], vec![s1, s2]);
    }

    #[test]
    fn cumulative_workloads_stack_by_priority() {
        let (app, [u, _, p], [s1, s2]) = sharing_app();
        let mut w = WorkloadVector::new();
        w.set(s1, RequestRate::per_minute(1000.0));
        w.set(s2, RequestRate::per_minute(500.0));
        let priorities: BTreeMap<_, _> = [(p, vec![s1, s2])].into_iter().collect();
        let eff1 = cumulative_workloads(&app, s1, &w, &priorities).unwrap();
        let eff2 = cumulative_workloads(&app, s2, &w, &priorities).unwrap();
        assert!((eff1[&p] - 1000.0).abs() < 1e-9, "high priority sees own");
        assert!((eff2[&p] - 1500.0).abs() < 1e-9, "low priority sees all");
        assert!((eff1[&u] - 1000.0).abs() < 1e-9, "exclusive ms sees own");
    }

    #[test]
    fn total_workloads_sum_all_services() {
        let (app, [_, _, p], [s1, s2]) = sharing_app();
        let mut w = WorkloadVector::new();
        w.set(s1, RequestRate::per_minute(1000.0));
        w.set(s2, RequestRate::per_minute(500.0));
        let eff = total_workloads(&app, s1, &w).unwrap();
        assert!((eff[&p] - 1500.0).abs() < 1e-9);
    }
}
