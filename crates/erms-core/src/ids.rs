//! Strongly-typed identifiers for microservices, services and graph nodes.
//!
//! All identifiers are small copyable newtypes over `u32` (C-NEWTYPE). They
//! are created by [`AppBuilder`](crate::app::AppBuilder) and the graph
//! builder, and index into the owning [`App`](crate::app::App).

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw index.
            ///
            /// Indices are assigned densely from zero by the builders; this
            /// constructor exists for deserialization and test fixtures.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw dense index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a microservice within an [`App`](crate::app::App).
    ///
    /// A microservice is deployed once and may be referenced (shared) by any
    /// number of services.
    MicroserviceId,
    "ms-"
);

define_id!(
    /// Identifier of an online service (an end-to-end request type with an
    /// SLA) within an [`App`](crate::app::App).
    ServiceId,
    "svc-"
);

define_id!(
    /// Identifier of a node within one service's dependency graph.
    ///
    /// Distinct nodes may reference the same [`MicroserviceId`] (a
    /// microservice invoked at several points of one request).
    NodeId,
    "node-"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = MicroserviceId::new(1);
        let b = MicroserviceId::new(2);
        assert!(a < b);
        let set: HashSet<_> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_has_prefix() {
        assert_eq!(ServiceId::new(7).to_string(), "svc-7");
        assert_eq!(MicroserviceId::new(0).to_string(), "ms-0");
        assert_eq!(NodeId::new(12).to_string(), "node-12");
    }

    #[test]
    fn index_round_trip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }
}
