//! The Erms controller (§3, Fig. 6): Online Scaling plus Resource
//! Provisioning.
//!
//! [`ErmsScaler`] implements the Online Scaling module. In
//! [`SchedulingMode::Priority`] (the full Erms design) it:
//!
//! 1. computes *initial* latency targets per service with each service's
//!    own workloads ([`plan_service`]);
//! 2. derives service priorities at every shared microservice from those
//!    targets ([`assign_priorities`]);
//! 3. recomputes targets per service with the priority-modified cumulative
//!    workloads ([`cumulative_workloads`]), calling Latency Target
//!    Computation exactly twice per dependency graph as in §5.3.3;
//! 4. sizes each microservice to the maximum per-service container demand
//!    and rounds up (§7).
//!
//! [`SchedulingMode::Fcfs`] is the Latency-Target-Computation-only variant
//! evaluated in Fig. 14(a): no priorities, every service models the total
//! arrival stream at shared microservices (Eq. 16).
//!
//! [`ErmsManager`] closes the loop against a [`ClusterState`]: it reads the
//! cluster-average interference, plans, and provisions — one scaling round
//! of the periodic controller.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::app::{App, WorkloadVector};
use crate::autoscaler::{Autoscaler, ScalingContext, ScalingPlan};
use crate::cache::PlanCache;
use crate::error::Result;
use crate::ids::{MicroserviceId, ServiceId};
use crate::incremental::{IncrementalPlanner, PlannerMetrics};
use crate::latency::Interference;
use crate::multiplexing::{assign_priorities, cumulative_workloads, total_workloads};
use crate::provisioning::{provision, ClusterState, PlacementPolicy, ProvisionReport};
use crate::scaling::{own_workloads, plan_service_cached, ScalerConfig, ServicePlan};

/// How requests from different services are ordered at shared
/// microservices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulingMode {
    /// Erms priority scheduling (§4.3/§5.3.2) — the full design.
    #[default]
    Priority,
    /// First-come-first-serve at shared microservices; latency targets are
    /// still computed optimally (the Fig. 14(a) ablation).
    Fcfs,
}

/// The Erms Online Scaling module bound to an application.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct ErmsScaler<'a> {
    app: &'a App,
    config: ScalerConfig,
    mode: SchedulingMode,
    cache: Option<Arc<PlanCache>>,
}

impl<'a> ErmsScaler<'a> {
    /// Creates a scaler in full priority mode with default configuration.
    pub fn new(app: &'a App) -> Self {
        Self {
            app,
            config: ScalerConfig::default(),
            mode: SchedulingMode::Priority,
            cache: None,
        }
    }

    /// Overrides the scheduling mode.
    #[must_use]
    pub fn with_mode(mut self, mode: SchedulingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the configuration.
    #[must_use]
    pub fn with_config(mut self, config: ScalerConfig) -> Self {
        self.config = config;
        self
    }

    /// Shares a [`PlanCache`] memoizing graph merges across rounds.
    /// Plans are bit-identical with or without a cache.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Computes a scaling plan for the observed workloads and cluster
    /// interference.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SlaInfeasible`](crate::Error::SlaInfeasible) when a
    /// service's SLA cannot be met by any allocation.
    pub fn plan(&self, workloads: &WorkloadVector, itf: Interference) -> Result<ScalingPlan> {
        erms_plan_cached(
            self.app,
            workloads,
            itf,
            &self.config,
            self.mode,
            self.cache.as_deref(),
        )
    }
}

/// Computes an Erms scaling plan (free-function form used by the
/// [`Autoscaler`] implementation).
pub fn erms_plan(
    app: &App,
    workloads: &WorkloadVector,
    itf: Interference,
    config: &ScalerConfig,
    mode: SchedulingMode,
) -> Result<ScalingPlan> {
    erms_plan_cached(app, workloads, itf, config, mode, None)
}

/// [`erms_plan`] with an optional [`PlanCache`] memoizing the graph merges
/// of both Latency Target Computation passes.
///
/// The cache only short-circuits Alg. 1 (merge-tree construction) on exact
/// input equality, so the returned plan is bit-identical to the uncached
/// one; repeated controller rounds over the same app stop re-deriving the
/// same merge trees.
pub fn erms_plan_cached(
    app: &App,
    workloads: &WorkloadVector,
    itf: Interference,
    config: &ScalerConfig,
    mode: SchedulingMode,
    cache: Option<&PlanCache>,
) -> Result<ScalingPlan> {
    let mut plan = ScalingPlan::new(match mode {
        SchedulingMode::Priority => "erms",
        SchedulingMode::Fcfs => "erms-fcfs",
    });

    // First Latency Target Computation pass: per-service targets with each
    // service's own workloads.
    let mut initial: BTreeMap<ServiceId, ServicePlan> = BTreeMap::new();
    for (sid, _) in app.services() {
        let rate = workloads.rate(sid);
        let eff = own_workloads(app, sid, rate)?;
        initial.insert(
            sid,
            plan_service_cached(app, sid, rate, &eff, itf, config, cache)?,
        );
    }

    // Priority assignment at shared microservices (§5.3.2).
    let priorities = match mode {
        SchedulingMode::Priority => assign_priorities(app, &initial),
        SchedulingMode::Fcfs => BTreeMap::new(),
    };

    // Second pass with modified workloads; track the max demand per
    // microservice across services.
    let mut demand: BTreeMap<MicroserviceId, f64> = BTreeMap::new();
    for (sid, _) in app.services() {
        let rate = workloads.rate(sid);
        let eff = match mode {
            SchedulingMode::Priority => cumulative_workloads(app, sid, workloads, &priorities)?,
            SchedulingMode::Fcfs => total_workloads(app, sid, workloads)?,
        };
        let sp = plan_service_cached(app, sid, rate, &eff, itf, config, cache)?;
        for (&ms, &n) in &sp.ms_containers {
            demand.entry(ms).and_modify(|d| *d = d.max(n)).or_insert(n);
        }
        plan.set_service_plan(sp);
    }

    // Round up to integral containers (§7). The zero-vs-missing semantics
    // here are deliberate and load-bearing for provisioning:
    //
    // * a microservice on some service's call path always gets an entry —
    //   an *explicit* 0 when its demand is zero this round (scale to
    //   zero), and at least 1 for any positive demand, however small, so
    //   demand-shedding (which scales workloads down, never to zero)
    //   can never deallocate a service's whole path;
    // * a microservice on no call path gets *no* entry, and
    //   `provision` leaves its current deployment untouched.
    for (ms, n) in demand {
        let count = if n <= 0.0 {
            0
        } else {
            n.ceil().max(1.0) as u32
        };
        plan.set_containers(ms, count);
    }
    for (ms, order) in priorities {
        plan.set_priority_order(ms, order);
    }
    Ok(plan)
}

/// Erms as an [`Autoscaler`] for scheme comparisons.
///
/// Carries an [`IncrementalPlanner`] across rounds: a repeated `plan`
/// call whose inputs barely changed (the fig13 per-window loop, sweep
/// steps) re-plans only the dirty services. Plans stay bit-identical to
/// [`erms_plan_cached`] on the same inputs — incrementality is purely a
/// performance property.
#[derive(Debug, Clone, Default)]
pub struct Erms {
    /// Scheduling mode at shared microservices.
    pub mode: SchedulingMode,
    cache: Option<Arc<PlanCache>>,
    planner: IncrementalPlanner,
}

impl Erms {
    /// Full Erms (priority scheduling).
    pub fn new() -> Self {
        Self::default()
    }

    /// The Latency-Target-Computation-only ablation (FCFS at shared
    /// microservices, Fig. 14a).
    pub fn fcfs() -> Self {
        Self {
            mode: SchedulingMode::Fcfs,
            ..Self::default()
        }
    }

    /// Shares a [`PlanCache`] memoizing graph merges across planning
    /// rounds. Plans are bit-identical with or without a cache.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Work counters of the carried incremental planner.
    #[must_use]
    pub fn planner_metrics(&self) -> PlannerMetrics {
        self.planner.metrics()
    }
}

impl Autoscaler for Erms {
    fn name(&self) -> &str {
        match self.mode {
            SchedulingMode::Priority => "erms",
            SchedulingMode::Fcfs => "erms-fcfs",
        }
    }

    fn plan(&mut self, ctx: &ScalingContext<'_>) -> Result<ScalingPlan> {
        self.planner.ensure_config(ctx.config, self.mode);
        self.planner
            .replan_auto(
                ctx.app,
                ctx.workloads,
                ctx.interference,
                self.cache.as_deref(),
            )
            .cloned()
    }
}

/// One full controller round: observe interference, plan, provision.
#[derive(Debug)]
pub struct ErmsManager<'a> {
    app: &'a App,
    config: ScalerConfig,
    mode: SchedulingMode,
    placement: PlacementPolicy,
}

/// The outcome of one [`ErmsManager::run_round`] invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// The plan that was applied.
    pub plan: ScalingPlan,
    /// The interference observed before scaling.
    pub observed_interference: Interference,
    /// Placement summary.
    pub provision: ProvisionReport,
}

impl<'a> ErmsManager<'a> {
    /// Creates a manager with default configuration (priority scheduling,
    /// whole-cluster interference-aware placement).
    pub fn new(app: &'a App) -> Self {
        Self {
            app,
            config: ScalerConfig::default(),
            mode: SchedulingMode::Priority,
            placement: PlacementPolicy::default(),
        }
    }

    /// Overrides the placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Overrides the scheduling mode.
    #[must_use]
    pub fn with_mode(mut self, mode: SchedulingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the scaler configuration.
    #[must_use]
    pub fn with_config(mut self, config: ScalerConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs one periodic scaling round against the cluster: reads the
    /// cluster-average interference (§5.3.1), computes a plan, and places /
    /// releases containers (§5.4).
    ///
    /// # Errors
    ///
    /// Propagates planning and placement failures
    /// ([`Error::SlaInfeasible`](crate::Error::SlaInfeasible),
    /// [`Error::InsufficientCapacity`](crate::Error::InsufficientCapacity)).
    pub fn run_round(
        &self,
        state: &mut ClusterState,
        workloads: &WorkloadVector,
    ) -> Result<RoundOutcome> {
        let itf = state.average_interference(self.app);
        let plan = erms_plan(self.app, workloads, itf, &self.config, self.mode)?;
        let provision = provision(state, self.app, &plan, self.placement)?;
        Ok(RoundOutcome {
            plan,
            observed_interference: itf,
            provision,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppBuilder, RequestRate, Sla};
    use crate::evaluate::plan_meets_slas;
    use crate::latency::LatencyProfile;
    use crate::resources::Resources;

    fn sharing_app() -> (App, [MicroserviceId; 3], [ServiceId; 2]) {
        let mut b = AppBuilder::new("fig5");
        let u = b.microservice("U", LatencyProfile::linear(0.08, 3.0), Resources::default());
        let h = b.microservice("H", LatencyProfile::linear(0.02, 3.0), Resources::default());
        let p = b.microservice("P", LatencyProfile::linear(0.03, 2.0), Resources::default());
        let s1 = b.service("svc1", Sla::p95_ms(300.0), |g| {
            let root = g.entry(u);
            g.call_seq(root, p);
        });
        let s2 = b.service("svc2", Sla::p95_ms(300.0), |g| {
            let root = g.entry(h);
            g.call_seq(root, p);
        });
        (b.build().unwrap(), [u, h, p], [s1, s2])
    }

    #[test]
    fn priority_plan_meets_slas_in_model() {
        let (app, _, _) = sharing_app();
        let w = WorkloadVector::uniform(&app, RequestRate::per_minute(40_000.0));
        let plan = ErmsScaler::new(&app)
            .plan(&w, Interference::default())
            .unwrap();
        assert!(plan_meets_slas(&app, &plan, &w, &Interference::default()).unwrap());
        assert!(plan.has_priorities());
    }

    #[test]
    fn fcfs_plan_meets_slas_in_model() {
        let (app, _, _) = sharing_app();
        let w = WorkloadVector::uniform(&app, RequestRate::per_minute(40_000.0));
        let plan = ErmsScaler::new(&app)
            .with_mode(SchedulingMode::Fcfs)
            .plan(&w, Interference::default())
            .unwrap();
        assert!(plan_meets_slas(&app, &plan, &w, &Interference::default()).unwrap());
        assert!(!plan.has_priorities());
    }

    #[test]
    fn priority_saves_resources_over_fcfs() {
        // The §2.3 observation: priority scheduling needs fewer containers
        // than FCFS sharing for the same SLAs.
        let (app, _, _) = sharing_app();
        let w = WorkloadVector::uniform(&app, RequestRate::per_minute(40_000.0));
        let itf = Interference::default();
        let prio = ErmsScaler::new(&app).plan(&w, itf).unwrap();
        let fcfs = ErmsScaler::new(&app)
            .with_mode(SchedulingMode::Fcfs)
            .plan(&w, itf)
            .unwrap();
        assert!(
            prio.total_containers() <= fcfs.total_containers(),
            "priority {} vs fcfs {}",
            prio.total_containers(),
            fcfs.total_containers()
        );
    }

    #[test]
    fn zero_workload_plans_zero_containers() {
        let (app, [u, _, p], _) = sharing_app();
        let w = WorkloadVector::new();
        let plan = ErmsScaler::new(&app)
            .plan(&w, Interference::default())
            .unwrap();
        assert_eq!(plan.containers(u), 0);
        assert_eq!(plan.containers(p), 0);
        assert_eq!(plan.total_containers(), 0);
    }

    #[test]
    fn autoscaler_trait_round_trip() {
        let (app, _, _) = sharing_app();
        let w = WorkloadVector::uniform(&app, RequestRate::per_minute(10_000.0));
        let config = ScalerConfig::default();
        let ctx = ScalingContext {
            app: &app,
            workloads: &w,
            interference: Interference::default(),
            config: &config,
        };
        let mut erms = Erms::new();
        assert_eq!(erms.name(), "erms");
        let plan = Autoscaler::plan(&mut erms, &ctx).unwrap();
        assert!(plan.total_containers() > 0);
        let mut fcfs = Erms::fcfs();
        assert_eq!(fcfs.name(), "erms-fcfs");
        assert!(Autoscaler::plan(&mut fcfs, &ctx).is_ok());
    }

    #[test]
    fn manager_round_places_containers() {
        let (app, _, _) = sharing_app();
        let mut state = ClusterState::paper_cluster();
        let w = WorkloadVector::uniform(&app, RequestRate::per_minute(20_000.0));
        let manager = ErmsManager::new(&app);
        let outcome = manager.run_round(&mut state, &w).unwrap();
        assert!(outcome.provision.placed > 0);
        assert_eq!(
            outcome.plan.total_containers(),
            state
                .hosts()
                .iter()
                .map(|h| h.container_count() as u64)
                .sum::<u64>()
        );
        // Scale down on a second round with lower workload.
        let w2 = WorkloadVector::uniform(&app, RequestRate::per_minute(2_000.0));
        let outcome2 = manager.run_round(&mut state, &w2).unwrap();
        assert!(outcome2.provision.released > 0);
    }

    #[test]
    fn idle_service_path_gets_explicit_zero_not_missing() {
        // H is only on svc2's path; with svc2 idle its demand is zero, and
        // the plan must say so *explicitly* (scale-to-zero), not omit it.
        let (app, [u, h, p], [s1, s2]) = sharing_app();
        let mut w = WorkloadVector::new();
        w.set(s1, RequestRate::per_minute(20_000.0));
        w.set(s2, RequestRate::per_minute(0.0));
        let plan = ErmsScaler::new(&app)
            .plan(&w, Interference::default())
            .unwrap();
        assert_eq!(plan.get(h), Some(0), "idle path: explicit zero");
        assert!(plan.covers(h));
        assert!(plan.containers(u) >= 1);
        assert!(plan.containers(p) >= 1);
    }

    #[test]
    fn tiny_positive_demand_rounds_up_to_one_container() {
        // Any positive demand, however small, keeps at least one container
        // — the guarantee that demand-shedding (which scales workloads
        // down, never to zero) cannot deallocate a service's path.
        let (app, [_, h, _], [s1, s2]) = sharing_app();
        let mut w = WorkloadVector::new();
        w.set(s1, RequestRate::per_minute(20_000.0));
        w.set(s2, RequestRate::per_minute(1.0));
        let plan = ErmsScaler::new(&app)
            .plan(&w, Interference::default())
            .unwrap();
        assert!(plan.containers(h) >= 1);
    }

    #[test]
    fn unused_microservice_is_missing_and_left_unprovisioned() {
        // A microservice on no service's call path gets no plan entry, and
        // provisioning leaves whatever deployment it already has alone.
        let mut b = AppBuilder::new("extra");
        let u = b.microservice("U", LatencyProfile::linear(0.08, 3.0), Resources::default());
        let x = b.microservice("X", LatencyProfile::linear(0.01, 1.0), Resources::default());
        let s = b.service("svc", Sla::p95_ms(300.0), |g| {
            g.entry(u);
        });
        let app = b.build().unwrap();
        let mut w = WorkloadVector::new();
        w.set(s, RequestRate::per_minute(10_000.0));
        let plan = ErmsScaler::new(&app)
            .plan(&w, Interference::default())
            .unwrap();
        assert!(!plan.covers(x));
        assert_eq!(plan.get(x), None);

        let mut state = ClusterState::paper_cluster();
        let mut pre = ScalingPlan::new("manual");
        pre.set_containers(x, 3);
        provision(&mut state, &app, &pre, PlacementPolicy::default()).unwrap();
        assert_eq!(state.containers_of(x), 3);
        provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        assert_eq!(state.containers_of(x), 3, "uncovered deployment untouched");
    }
}
