//! Interference-aware resource provisioning (§5.4).
//!
//! The *Online Scaling* module decides **how many** containers each
//! microservice needs; this module decides **where** they run. Containers
//! of one microservice spread across hosts with different background load
//! (batch jobs colocated with microservices, §2.1) experience different
//! interference, unbalancing the performance of supposedly-identical
//! containers and causing SLA violations. Erms therefore places (and
//! releases) containers so as to minimise *resource unbalance*: the
//! deviation of every host's utilisation from the cluster-wide mean.
//!
//! Solving the underlying non-linear integer program exactly is NP-hard;
//! like the paper, we use a greedy descent and optionally partition the
//! hosts into fixed groups and solve each group independently (the POP
//! technique [31]), trading a little quality for a large speed-up.
//!
//! The [`PlacementPolicy::KubernetesDefault`] baseline reproduces the
//! stock scheduler the paper compares against (Fig. 15): least-requested
//! spreading that sees only container *requests* — it is blind to the
//! background (batch) utilisation that actually causes interference.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::app::App;
use crate::autoscaler::ScalingPlan;
use crate::error::{Error, Result};
use crate::ids::MicroserviceId;
use crate::latency::Interference;

/// One physical host: capacity, invisible background (batch) usage, and the
/// containers currently placed on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Host {
    /// CPU capacity in cores.
    pub cpu_capacity: f64,
    /// Memory capacity in MB.
    pub mem_capacity: f64,
    /// CPU used by colocated batch jobs (cores) — visible to utilisation
    /// probes (Prometheus) but *not* to request-based schedulers.
    pub background_cpu: f64,
    /// Memory used by colocated batch jobs (MB).
    pub background_mem: f64,
    containers: BTreeMap<MicroserviceId, u32>,
}

impl Host {
    /// Creates an empty host. The paper's hosts have 32 cores and 64 GB
    /// (§6.1).
    pub fn new(cpu_capacity: f64, mem_capacity: f64) -> Self {
        Self {
            cpu_capacity,
            mem_capacity,
            background_cpu: 0.0,
            background_mem: 0.0,
            containers: BTreeMap::new(),
        }
    }

    /// A paper-shaped host (32 cores, 64 GB).
    pub fn paper_host() -> Self {
        Self::new(32.0, 64.0 * 1024.0)
    }

    /// Containers of `ms` currently on this host.
    pub fn containers_of(&self, ms: MicroserviceId) -> u32 {
        self.containers.get(&ms).copied().unwrap_or(0)
    }

    /// Total containers on this host.
    pub fn container_count(&self) -> u32 {
        self.containers.values().sum()
    }

    /// CPU and memory consumed by placed containers (by request size).
    fn container_usage(&self, app: &App) -> (f64, f64) {
        let mut cpu = 0.0;
        let mut mem = 0.0;
        for (&ms, &count) in &self.containers {
            if let Ok(m) = app.microservice(ms) {
                cpu += m.resources.cpu * count as f64;
                mem += m.resources.memory_mb * count as f64;
            }
        }
        (cpu, mem)
    }

    /// Actual utilisation including background load, as a pair of
    /// fractions.
    pub fn utilization(&self, app: &App) -> (f64, f64) {
        let (cpu, mem) = self.container_usage(app);
        (
            ((cpu + self.background_cpu) / self.cpu_capacity).clamp(0.0, 1.0),
            ((mem + self.background_mem) / self.mem_capacity).clamp(0.0, 1.0),
        )
    }

    /// Utilisation from container *requests* only — what the Kubernetes
    /// default scheduler sees.
    pub fn requested_utilization(&self, app: &App) -> (f64, f64) {
        let (cpu, mem) = self.container_usage(app);
        (
            (cpu / self.cpu_capacity).clamp(0.0, 1.0),
            (mem / self.mem_capacity).clamp(0.0, 1.0),
        )
    }

    /// The interference containers on this host experience (§5.2 uses host
    /// CPU and memory utilisation).
    pub fn interference(&self, app: &App) -> Interference {
        let (c, m) = self.utilization(app);
        Interference::new(c, m)
    }
}

/// Container placement across a cluster of hosts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterState {
    hosts: Vec<Host>,
}

impl ClusterState {
    /// Creates a cluster of identical empty hosts.
    pub fn new(hosts: Vec<Host>) -> Self {
        Self { hosts }
    }

    /// The paper's 20-host evaluation cluster (§6.1).
    pub fn paper_cluster() -> Self {
        Self::new((0..20).map(|_| Host::paper_host()).collect())
    }

    /// Read access to the hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Mutable access to the hosts (e.g. to inject background load).
    pub fn hosts_mut(&mut self) -> &mut [Host] {
        &mut self.hosts
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the cluster has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Total containers of `ms` across the cluster.
    pub fn containers_of(&self, ms: MicroserviceId) -> u32 {
        self.hosts.iter().map(|h| h.containers_of(ms)).sum()
    }

    /// Cluster-average interference — the value the Online Scaling module
    /// feeds into the profiling model (§5.3.1).
    pub fn average_interference(&self, app: &App) -> Interference {
        if self.hosts.is_empty() {
            return Interference::new(0.0, 0.0);
        }
        let n = self.hosts.len() as f64;
        let (c, m) = self
            .hosts
            .iter()
            .map(|h| h.utilization(app))
            .fold((0.0, 0.0), |(ac, am), (c, m)| (ac + c, am + m));
        Interference::new(c / n, m / n)
    }

    /// Average interference experienced by the containers of `ms`
    /// (container-weighted), or the cluster average if it has none.
    pub fn microservice_interference(&self, app: &App, ms: MicroserviceId) -> Interference {
        let mut weight = 0.0;
        let mut cpu = 0.0;
        let mut mem = 0.0;
        for h in &self.hosts {
            let count = h.containers_of(ms) as f64;
            if count > 0.0 {
                let (c, m) = h.utilization(app);
                cpu += c * count;
                mem += m * count;
                weight += count;
            }
        }
        if weight > 0.0 {
            Interference::new(cpu / weight, mem / weight)
        } else {
            self.average_interference(app)
        }
    }

    /// Appends a host to the cluster (e.g. a replacement after a failure).
    pub fn add_host(&mut self, host: Host) {
        self.hosts.push(host);
    }

    /// Removes host `index` from the cluster, returning it together with
    /// every container that was resident on it — the "host failure" fault:
    /// all resident containers are lost and must be re-placed by the next
    /// controller round.
    ///
    /// Returns `None` when `index` is out of bounds.
    pub fn fail_host(&mut self, index: usize) -> Option<Host> {
        if index >= self.hosts.len() {
            return None;
        }
        Some(self.hosts.remove(index))
    }

    /// Removes up to `count` containers of `ms` from the cluster (most
    /// loaded hosts first), returning how many were actually removed — the
    /// "container crash" fault at cluster level.
    pub fn crash_containers(&mut self, app: &App, ms: MicroserviceId, count: u32) -> u32 {
        let mut removed = 0;
        while removed < count {
            let Some(victim) = self
                .hosts
                .iter()
                .enumerate()
                .filter(|(_, h)| h.containers_of(ms) > 0)
                .max_by(|(_, a), (_, b)| {
                    let (ac, am) = a.utilization(app);
                    let (bc, bm) = b.utilization(app);
                    (ac + am).total_cmp(&(bc + bm))
                })
                .map(|(i, _)| i)
            else {
                break;
            };
            let host = &mut self.hosts[victim];
            if let Some(entry) = host.containers.get_mut(&ms) {
                *entry -= 1;
                if *entry == 0 {
                    host.containers.remove(&ms);
                }
            }
            removed += 1;
        }
        removed
    }

    /// Total containers across all hosts and microservices.
    pub fn total_containers(&self) -> u64 {
        self.hosts.iter().map(|h| h.container_count() as u64).sum()
    }

    /// Resource unbalance (§5.4): the mean squared deviation of host
    /// utilisation (CPU and memory) from the cluster-wide mean.
    pub fn unbalance(&self, app: &App) -> f64 {
        if self.hosts.is_empty() {
            return 0.0;
        }
        let mean = self.average_interference(app);
        let n = self.hosts.len() as f64;
        self.hosts
            .iter()
            .map(|h| {
                let (c, m) = h.utilization(app);
                (c - mean.cpu).powi(2) + (m - mean.memory).powi(2)
            })
            .sum::<f64>()
            / n
    }
}

/// Which placement algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Erms' interference-aware placement, with hosts statically divided
    /// into `groups` equal partitions solved independently (POP [31]).
    /// `groups = 1` solves the whole cluster at once.
    InterferenceAware {
        /// Number of POP partitions (≥ 1).
        groups: usize,
    },
    /// The Kubernetes default scheduler: least-requested spreading, blind
    /// to background utilisation.
    KubernetesDefault,
}

impl Default for PlacementPolicy {
    fn default() -> Self {
        PlacementPolicy::InterferenceAware { groups: 1 }
    }
}

/// Applies a scaling plan to the cluster: releases surplus containers and
/// places missing ones according to `policy`. Returns the number of
/// placements and releases performed.
///
/// The application is **transactional**: on any failure `state` is left
/// exactly as it was — partial releases/placements are rolled back — so a
/// caller (notably the resilience ladder in
/// [`resilience`](crate::resilience)) can retry with a relaxed policy or a
/// degraded plan without first repairing the cluster.
///
/// # Errors
///
/// Returns [`Error::InsufficientCapacity`] when the plan requests more CPU
/// than the cluster can hold (memory is checked the same way through the
/// placement loop).
pub fn provision(
    state: &mut ClusterState,
    app: &App,
    plan: &ScalingPlan,
    policy: PlacementPolicy,
) -> Result<ProvisionReport> {
    // Work on a scratch copy and commit atomically on success. A journal of
    // inverse operations would avoid the clone, but cluster states are small
    // (a few dozen hosts with per-microservice counters) and the clone makes
    // the rollback trivially correct under every failure path.
    let mut working = state.clone();
    let report = provision_in_place(&mut working, app, plan, policy)?;
    *state = working;
    Ok(report)
}

/// The non-transactional provisioning pass; may leave `state` partially
/// mutated on error, which [`provision`] hides behind a scratch copy.
fn provision_in_place(
    state: &mut ClusterState,
    app: &App,
    plan: &ScalingPlan,
    policy: PlacementPolicy,
) -> Result<ProvisionReport> {
    // Capacity sanity check on CPU.
    let requested: f64 = plan
        .iter()
        .map(|(ms, c)| {
            app.microservice(ms)
                .map(|m| m.resources.cpu * c as f64)
                .unwrap_or(0.0)
        })
        .sum();
    let available: f64 = state
        .hosts
        .iter()
        .map(|h| (h.cpu_capacity - h.background_cpu).max(0.0))
        .sum();
    if requested > available {
        return Err(Error::InsufficientCapacity {
            requested_cpu: requested,
            available_cpu: available,
        });
    }

    let mut placed = 0u32;
    let mut released = 0u32;

    // Releases first: free the most-loaded hosts.
    for (ms, target) in plan.iter() {
        let mut current = state.containers_of(ms);
        while current > target {
            let victim = state
                .hosts
                .iter()
                .enumerate()
                .filter(|(_, h)| h.containers_of(ms) > 0)
                .max_by(|(_, a), (_, b)| {
                    let (ac, am) = a.utilization(app);
                    let (bc, bm) = b.utilization(app);
                    (ac + am).total_cmp(&(bc + bm))
                })
                .map(|(i, _)| i)
                // Invariant, not user-reachable: the loop condition
                // `current > target` holds only while containers_of(ms) > 0,
                // so some host must have one.
                .expect("containers_of > 0 implies a host has one");
            let host = &mut state.hosts[victim];
            let entry = host.containers.get_mut(&ms).expect("victim has container");
            *entry -= 1;
            if *entry == 0 {
                host.containers.remove(&ms);
            }
            current -= 1;
            released += 1;
        }
    }

    // Placements.
    let group_count = match policy {
        PlacementPolicy::InterferenceAware { groups } => groups.max(1),
        PlacementPolicy::KubernetesDefault => 1,
    };
    let host_count = state.hosts.len();
    let mut next_group = 0usize;
    for (ms, target) in plan.iter() {
        let m = app.microservice(ms)?;
        let mut current = state.containers_of(ms);
        while current < target {
            // Candidate hosts: the POP group for interference-aware mode,
            // the whole cluster for the Kubernetes baseline.
            let group = next_group % group_count;
            next_group += 1;
            let candidates: Vec<usize> = (0..host_count)
                .filter(|i| group_count == 1 || i % group_count == group)
                .filter(|&i| {
                    let h = &state.hosts[i];
                    let (cpu, mem) = h.container_usage(app);
                    cpu + h.background_cpu + m.resources.cpu <= h.cpu_capacity
                        && mem + h.background_mem + m.resources.memory_mb <= h.mem_capacity
                })
                .collect();
            let candidates = if candidates.is_empty() {
                // Group full: fall back to any host with room.
                (0..host_count)
                    .filter(|&i| {
                        let h = &state.hosts[i];
                        let (cpu, mem) = h.container_usage(app);
                        cpu + h.background_cpu + m.resources.cpu <= h.cpu_capacity
                            && mem + h.background_mem + m.resources.memory_mb <= h.mem_capacity
                    })
                    .collect()
            } else {
                candidates
            };
            let Some(&best) = candidates.iter().min_by(|&&x, &&y| {
                let score = |i: usize| -> f64 {
                    let h = &state.hosts[i];
                    match policy {
                        PlacementPolicy::KubernetesDefault => {
                            // Least-requested: only container requests count.
                            let (c, mm) = h.requested_utilization(app);
                            c + mm
                        }
                        PlacementPolicy::InterferenceAware { .. } => {
                            // Actual utilisation including background load:
                            // filling the least-utilised host is the greedy
                            // step that most reduces unbalance.
                            let (c, mm) = h.utilization(app);
                            c + mm
                        }
                    }
                };
                score(x).total_cmp(&score(y))
            }) else {
                return Err(Error::InsufficientCapacity {
                    requested_cpu: requested,
                    available_cpu: available,
                });
            };
            *state.hosts[best].containers.entry(ms).or_insert(0) += 1;
            current += 1;
            placed += 1;
        }
    }

    Ok(ProvisionReport {
        placed,
        released,
        unbalance: state.unbalance(app),
    })
}

/// Summary of one provisioning round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProvisionReport {
    /// Containers newly placed.
    pub placed: u32,
    /// Containers released.
    pub released: u32,
    /// Post-round resource unbalance of the cluster (§5.4).
    pub unbalance: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppBuilder, Sla};
    use crate::latency::LatencyProfile;
    use crate::resources::Resources;

    fn app_with_one_ms() -> (App, MicroserviceId) {
        let mut b = AppBuilder::new("p");
        let m = b.microservice(
            "m",
            LatencyProfile::linear(0.01, 1.0),
            Resources::new(1.0, 1024.0),
        );
        b.service("s", Sla::p95_ms(100.0), |g| {
            g.entry(m);
        });
        (b.build().unwrap(), m)
    }

    fn cluster(n: usize) -> ClusterState {
        ClusterState::new((0..n).map(|_| Host::paper_host()).collect())
    }

    #[test]
    fn placement_reaches_target_counts() {
        let (app, ms) = app_with_one_ms();
        let mut state = cluster(4);
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 10);
        let report = provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        assert_eq!(report.placed, 10);
        assert_eq!(state.containers_of(ms), 10);
    }

    #[test]
    fn scale_down_releases_from_most_loaded() {
        let (app, ms) = app_with_one_ms();
        let mut state = cluster(2);
        state.hosts_mut()[1].background_cpu = 20.0;
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 8);
        provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        plan.set_containers(ms, 4);
        let report = provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        assert_eq!(report.released, 4);
        assert_eq!(state.containers_of(ms), 4);
        // The loaded host should have shed more containers.
        assert!(state.hosts()[0].containers_of(ms) >= state.hosts()[1].containers_of(ms));
    }

    #[test]
    fn interference_aware_avoids_background_load() {
        let (app, ms) = app_with_one_ms();
        let mut state = cluster(2);
        state.hosts_mut()[0].background_cpu = 24.0; // 75% busy
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 10);
        provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        assert!(
            state.hosts()[1].containers_of(ms) > state.hosts()[0].containers_of(ms),
            "should prefer the idle host: {:?} vs {:?}",
            state.hosts()[0].containers_of(ms),
            state.hosts()[1].containers_of(ms)
        );
    }

    #[test]
    fn kubernetes_default_is_blind_to_background_load() {
        let (app, ms) = app_with_one_ms();
        let mut state = cluster(2);
        state.hosts_mut()[0].background_cpu = 24.0;
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 10);
        provision(&mut state, &app, &plan, PlacementPolicy::KubernetesDefault).unwrap();
        // Requests are equal on both hosts, so k8s spreads evenly despite
        // the background load.
        assert_eq!(state.hosts()[0].containers_of(ms), 5);
        assert_eq!(state.hosts()[1].containers_of(ms), 5);
        // And the resulting unbalance exceeds the interference-aware one.
        let k8s_unbalance = state.unbalance(&app);
        let mut state2 = cluster(2);
        state2.hosts_mut()[0].background_cpu = 24.0;
        provision(&mut state2, &app, &plan, PlacementPolicy::default()).unwrap();
        assert!(state2.unbalance(&app) < k8s_unbalance);
    }

    #[test]
    fn capacity_exhaustion_errors() {
        let (app, ms) = app_with_one_ms();
        let mut state = ClusterState::new(vec![Host::new(2.0, 4096.0)]);
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 100);
        assert!(matches!(
            provision(&mut state, &app, &plan, PlacementPolicy::default()),
            Err(Error::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn pop_grouping_still_places_all() {
        let (app, ms) = app_with_one_ms();
        let mut state = cluster(8);
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 20);
        provision(
            &mut state,
            &app,
            &plan,
            PlacementPolicy::InterferenceAware { groups: 4 },
        )
        .unwrap();
        assert_eq!(state.containers_of(ms), 20);
    }

    #[test]
    fn microservice_interference_weighted_by_containers() {
        let (app, ms) = app_with_one_ms();
        let mut state = cluster(2);
        state.hosts_mut()[0].background_cpu = 16.0; // 50% on host 0
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 4);
        provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        let itf = state.microservice_interference(&app, ms);
        assert!(itf.cpu > 0.0 && itf.cpu < 1.0);
        // Unknown microservice falls back to cluster average.
        let other = MicroserviceId::new(99);
        let avg = state.average_interference(&app);
        let fallback = state.microservice_interference(&app, other);
        assert!((fallback.cpu - avg.cpu).abs() < 1e-12);
    }

    #[test]
    fn unbalance_zero_for_identical_hosts() {
        let (app, _) = app_with_one_ms();
        let state = cluster(3);
        assert!(state.unbalance(&app) < 1e-12);
    }
}
