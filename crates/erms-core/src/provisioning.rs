//! Interference-aware resource provisioning (§5.4).
//!
//! The *Online Scaling* module decides **how many** containers each
//! microservice needs; this module decides **where** they run. Containers
//! of one microservice spread across hosts with different background load
//! (batch jobs colocated with microservices, §2.1) experience different
//! interference, unbalancing the performance of supposedly-identical
//! containers and causing SLA violations. Erms therefore places (and
//! releases) containers so as to minimise *resource unbalance*: the
//! deviation of every host's utilisation from the cluster-wide mean.
//!
//! Solving the underlying non-linear integer program exactly is NP-hard;
//! like the paper, we use a greedy descent and optionally partition the
//! hosts into fixed groups and solve each group independently (the POP
//! technique [31]), trading a little quality for a large speed-up.
//!
//! The [`PlacementPolicy::KubernetesDefault`] baseline reproduces the
//! stock scheduler the paper compares against (Fig. 15): least-requested
//! spreading that sees only container *requests* — it is blind to the
//! background (batch) utilisation that actually causes interference.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::app::App;
use crate::autoscaler::ScalingPlan;
use crate::error::{Error, Result};
use crate::ids::MicroserviceId;
use crate::latency::Interference;
use crate::resources::HostClass;

/// Procurement model of a host: stable on-demand capacity or reclaimable
/// spot capacity.
///
/// Spot hosts are cheap elastic capacity the provider may take back with an
/// advance notice; the provisioning layer cordons a host once a reclamation
/// notice is posted, and the spot-aware resilience ladder evacuates its
/// containers to surviving capacity inside the grace window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HostLifecycle {
    /// Regular capacity: stays until it fails.
    #[default]
    OnDemand,
    /// Reclaimable capacity: the provider may post a reclamation notice and
    /// take the host back after a grace window.
    Spot,
}

/// Physical failure domain of a host. Hosts sharing a rack share a switch
/// and a power feed; hosts sharing a zone share cooling and a power grid —
/// so faults are *correlated* along these coordinates, and
/// `ClusterFaultPlan::FailDomain` can take out a whole rack or zone at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct FailureDomain {
    /// Availability zone index.
    pub zone: u32,
    /// Rack index within the zone.
    pub rack: u32,
}

impl FailureDomain {
    /// Creates a (zone, rack) coordinate.
    pub fn new(zone: u32, rack: u32) -> Self {
        Self { zone, rack }
    }
}

/// One physical host: capacity, invisible background (batch) usage, and the
/// containers currently placed on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Host {
    /// CPU capacity in cores.
    pub cpu_capacity: f64,
    /// Memory capacity in MB.
    pub mem_capacity: f64,
    /// CPU used by colocated batch jobs (cores) — visible to utilisation
    /// probes (Prometheus) but *not* to request-based schedulers.
    pub background_cpu: f64,
    /// Memory used by colocated batch jobs (MB).
    pub background_mem: f64,
    /// Procurement model (on-demand vs reclaimable spot).
    pub lifecycle: HostLifecycle,
    /// Physical (zone, rack) coordinate for correlated failures.
    pub domain: FailureDomain,
    /// Multiplier on utilisation-derived interference (from the host class;
    /// 1.0 = paper-uniform behaviour).
    pub interference_scale: f64,
    /// Pending reclamation notice: the controller round at (or after) which
    /// the provider takes this host back. `None` = no notice posted.
    pub reclaim_at_round: Option<u64>,
    containers: BTreeMap<MicroserviceId, u32>,
    /// Vertical-scaling factors: per-microservice multiplier on container
    /// resource requests (resize-in-place). Absent = 1.0.
    resize: BTreeMap<MicroserviceId, u64>,
}

impl Host {
    /// Creates an empty on-demand host with neutral interference in domain
    /// (0, 0). The paper's hosts have 32 cores and 64 GB (§6.1).
    pub fn new(cpu_capacity: f64, mem_capacity: f64) -> Self {
        Self {
            cpu_capacity,
            mem_capacity,
            background_cpu: 0.0,
            background_mem: 0.0,
            lifecycle: HostLifecycle::OnDemand,
            domain: FailureDomain::default(),
            interference_scale: 1.0,
            reclaim_at_round: None,
            containers: BTreeMap::new(),
            resize: BTreeMap::new(),
        }
    }

    /// A paper-shaped host (32 cores, 64 GB).
    pub fn paper_host() -> Self {
        Self::new(32.0, 64.0 * 1024.0)
    }

    /// Creates an empty host shaped by a [`HostClass`].
    pub fn from_class(class: &HostClass) -> Self {
        let mut host = Self::new(class.cpu, class.memory_mb);
        host.interference_scale = class.interference_scale;
        host
    }

    /// Builder: sets the procurement lifecycle.
    pub fn with_lifecycle(mut self, lifecycle: HostLifecycle) -> Self {
        self.lifecycle = lifecycle;
        self
    }

    /// Builder: sets the (zone, rack) failure domain.
    pub fn with_domain(mut self, domain: FailureDomain) -> Self {
        self.domain = domain;
        self
    }

    /// Whether this is reclaimable spot capacity.
    pub fn is_spot(&self) -> bool {
        self.lifecycle == HostLifecycle::Spot
    }

    /// Whether a reclamation notice is pending on this host.
    pub fn reclaiming(&self) -> bool {
        self.reclaim_at_round.is_some()
    }

    /// The vertical-scaling factor applied to containers of `ms` on this
    /// host (1.0 when never resized).
    pub fn resize_factor(&self, ms: MicroserviceId) -> f64 {
        self.resize
            .get(&ms)
            .map(|&bits| f64::from_bits(bits))
            .unwrap_or(1.0)
    }

    fn set_resize(&mut self, ms: MicroserviceId, factor: f64) {
        if (factor - 1.0).abs() < 1e-12 {
            self.resize.remove(&ms);
        } else {
            self.resize.insert(ms, factor.to_bits());
        }
    }

    /// Current placements on this host, in microservice-id order — the
    /// export half of snapshot/restore for out-of-process persistence.
    pub fn placements(&self) -> impl Iterator<Item = (MicroserviceId, u32)> + '_ {
        self.containers.iter().map(|(&ms, &count)| (ms, count))
    }

    /// Per-microservice vertical-resize factors in effect on this host
    /// (factors indistinguishable from 1.0 are never stored, so every
    /// yielded entry is a real squeeze).
    pub fn resize_factors(&self) -> impl Iterator<Item = (MicroserviceId, f64)> + '_ {
        self.resize
            .iter()
            .map(|(&ms, &bits)| (ms, f64::from_bits(bits)))
    }

    /// Restores the mutable placement state captured by
    /// [`placements`](Self::placements) and
    /// [`resize_factors`](Self::resize_factors). The maps are taken
    /// verbatim — no re-normalisation — so restore ∘ export is the
    /// identity down to f64 bit patterns, which snapshot-driven warm
    /// re-plans rely on.
    pub fn restore_placements(
        &mut self,
        containers: impl IntoIterator<Item = (MicroserviceId, u32)>,
        resize: impl IntoIterator<Item = (MicroserviceId, f64)>,
    ) {
        self.containers = containers.into_iter().collect();
        self.resize = resize
            .into_iter()
            .map(|(ms, factor)| (ms, factor.to_bits()))
            .collect();
    }

    /// Containers of `ms` currently on this host.
    pub fn containers_of(&self, ms: MicroserviceId) -> u32 {
        self.containers.get(&ms).copied().unwrap_or(0)
    }

    /// Total containers on this host.
    pub fn container_count(&self) -> u32 {
        self.containers.values().sum()
    }

    /// CPU and memory consumed by placed containers (by request size,
    /// scaled by any vertical-resize factor in effect).
    fn container_usage(&self, app: &App) -> (f64, f64) {
        let mut cpu = 0.0;
        let mut mem = 0.0;
        for (&ms, &count) in &self.containers {
            if let Ok(m) = app.microservice(ms) {
                let factor = self.resize_factor(ms);
                cpu += m.resources.cpu * factor * count as f64;
                mem += m.resources.memory_mb * factor * count as f64;
            }
        }
        (cpu, mem)
    }

    /// Actual utilisation including background load, as a pair of
    /// fractions.
    pub fn utilization(&self, app: &App) -> (f64, f64) {
        let (cpu, mem) = self.container_usage(app);
        (
            ((cpu + self.background_cpu) / self.cpu_capacity).clamp(0.0, 1.0),
            ((mem + self.background_mem) / self.mem_capacity).clamp(0.0, 1.0),
        )
    }

    /// Utilisation from container *requests* only — what the Kubernetes
    /// default scheduler sees.
    pub fn requested_utilization(&self, app: &App) -> (f64, f64) {
        let (cpu, mem) = self.container_usage(app);
        (
            (cpu / self.cpu_capacity).clamp(0.0, 1.0),
            (mem / self.mem_capacity).clamp(0.0, 1.0),
        )
    }

    /// Utilisation scaled by the host class's interference profile — the
    /// pressure colocated containers actually *feel* on this hardware.
    /// Identical to [`Host::utilization`] when `interference_scale == 1.0`.
    pub fn felt_utilization(&self, app: &App) -> (f64, f64) {
        let (c, m) = self.utilization(app);
        (
            (c * self.interference_scale).clamp(0.0, 1.0),
            (m * self.interference_scale).clamp(0.0, 1.0),
        )
    }

    /// The interference containers on this host experience (§5.2 uses host
    /// CPU and memory utilisation, here scaled by the class profile).
    pub fn interference(&self, app: &App) -> Interference {
        let (c, m) = self.felt_utilization(app);
        Interference::new(c, m)
    }
}

/// Container placement across a cluster of hosts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterState {
    hosts: Vec<Host>,
    /// Cluster-wide vertical-scaling factors (f64 bit patterns), mirrored
    /// onto every host so per-host utilisation stays self-contained. Kept
    /// here so hosts added later inherit the factors.
    resize: BTreeMap<MicroserviceId, u64>,
}

impl ClusterState {
    /// Creates a cluster of identical empty hosts.
    pub fn new(hosts: Vec<Host>) -> Self {
        Self {
            hosts,
            resize: BTreeMap::new(),
        }
    }

    /// The paper's 20-host evaluation cluster (§6.1).
    pub fn paper_cluster() -> Self {
        Self::new((0..20).map(|_| Host::paper_host()).collect())
    }

    /// Read access to the hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Mutable access to the hosts (e.g. to inject background load).
    pub fn hosts_mut(&mut self) -> &mut [Host] {
        &mut self.hosts
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the cluster has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Total containers of `ms` across the cluster.
    pub fn containers_of(&self, ms: MicroserviceId) -> u32 {
        self.hosts.iter().map(|h| h.containers_of(ms)).sum()
    }

    /// Cluster-average interference — the value the Online Scaling module
    /// feeds into the profiling model (§5.3.1).
    pub fn average_interference(&self, app: &App) -> Interference {
        if self.hosts.is_empty() {
            return Interference::new(0.0, 0.0);
        }
        let n = self.hosts.len() as f64;
        let (c, m) = self
            .hosts
            .iter()
            .map(|h| h.felt_utilization(app))
            .fold((0.0, 0.0), |(ac, am), (c, m)| (ac + c, am + m));
        Interference::new(c / n, m / n)
    }

    /// Average interference experienced by the containers of `ms`
    /// (container-weighted), or the cluster average if it has none.
    pub fn microservice_interference(&self, app: &App, ms: MicroserviceId) -> Interference {
        let mut weight = 0.0;
        let mut cpu = 0.0;
        let mut mem = 0.0;
        for h in &self.hosts {
            let count = h.containers_of(ms) as f64;
            if count > 0.0 {
                let (c, m) = h.felt_utilization(app);
                cpu += c * count;
                mem += m * count;
                weight += count;
            }
        }
        if weight > 0.0 {
            Interference::new(cpu / weight, mem / weight)
        } else {
            self.average_interference(app)
        }
    }

    /// Cluster-wide vertical-resize factors (the values mirrored onto every
    /// host), for snapshot export.
    pub fn resize_factors(&self) -> impl Iterator<Item = (MicroserviceId, f64)> + '_ {
        self.resize
            .iter()
            .map(|(&ms, &bits)| (ms, f64::from_bits(bits)))
    }

    /// Restores cluster-wide vertical-resize factors captured by
    /// [`resize_factors`](Self::resize_factors), verbatim (no
    /// re-normalisation) — the hosts' own per-host factors are restored
    /// separately via [`Host::restore_placements`].
    pub fn restore_resize_factors(
        &mut self,
        factors: impl IntoIterator<Item = (MicroserviceId, f64)>,
    ) {
        self.resize = factors
            .into_iter()
            .map(|(ms, factor)| (ms, factor.to_bits()))
            .collect();
    }

    /// Appends a host to the cluster (e.g. a replacement after a failure).
    /// The host inherits any cluster-wide vertical-resize factors.
    pub fn add_host(&mut self, host: Host) {
        let mut host = host;
        for (&ms, &bits) in &self.resize {
            host.set_resize(ms, f64::from_bits(bits));
        }
        self.hosts.push(host);
    }

    /// Removes host `index` from the cluster, returning it together with
    /// every container that was resident on it — the "host failure" fault:
    /// all resident containers are lost and must be re-placed by the next
    /// controller round.
    ///
    /// Returns `None` when `index` is out of bounds.
    pub fn fail_host(&mut self, index: usize) -> Option<Host> {
        if index >= self.hosts.len() {
            return None;
        }
        Some(self.hosts.remove(index))
    }

    /// Removes up to `count` containers of `ms` from the cluster (most
    /// loaded hosts first), returning how many were actually removed — the
    /// "container crash" fault at cluster level.
    pub fn crash_containers(&mut self, app: &App, ms: MicroserviceId, count: u32) -> u32 {
        let mut removed = 0;
        while removed < count {
            let Some(victim) = self
                .hosts
                .iter()
                .enumerate()
                .filter(|(_, h)| h.containers_of(ms) > 0)
                .max_by(|(_, a), (_, b)| {
                    let (ac, am) = a.utilization(app);
                    let (bc, bm) = b.utilization(app);
                    (ac + am).total_cmp(&(bc + bm))
                })
                .map(|(i, _)| i)
            else {
                break;
            };
            let host = &mut self.hosts[victim];
            if let Some(entry) = host.containers.get_mut(&ms) {
                *entry -= 1;
                if *entry == 0 {
                    host.containers.remove(&ms);
                }
            }
            removed += 1;
        }
        removed
    }

    /// Total containers across all hosts and microservices.
    pub fn total_containers(&self) -> u64 {
        self.hosts.iter().map(|h| h.container_count() as u64).sum()
    }

    /// Resource unbalance (§5.4): the mean squared deviation of host
    /// utilisation (CPU and memory) from the cluster-wide mean.
    pub fn unbalance(&self, app: &App) -> f64 {
        if self.hosts.is_empty() {
            return 0.0;
        }
        let mean = self.average_interference(app);
        let n = self.hosts.len() as f64;
        self.hosts
            .iter()
            .map(|h| {
                let (c, m) = h.felt_utilization(app);
                (c - mean.cpu).powi(2) + (m - mean.memory).powi(2)
            })
            .sum::<f64>()
            / n
    }

    // ---- vertical scaling (resize-in-place) ----------------------------

    /// The cluster-wide vertical-scaling factor in effect for `ms`.
    pub fn resize_factor(&self, ms: MicroserviceId) -> f64 {
        self.resize
            .get(&ms)
            .map(|&bits| f64::from_bits(bits))
            .unwrap_or(1.0)
    }

    /// Resizes every container of `ms` in place: existing and future
    /// containers request `factor` × their configured resources. This is
    /// the second actuator next to horizontal replicas — under a capacity
    /// crunch the ladder squeezes containers before shedding demand.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive (a controller bug, not
    /// an operational condition).
    pub fn resize_in_place(&mut self, ms: MicroserviceId, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "resize factor must be finite and positive"
        );
        if (factor - 1.0).abs() < 1e-12 {
            self.resize.remove(&ms);
        } else {
            self.resize.insert(ms, factor.to_bits());
        }
        for h in &mut self.hosts {
            h.set_resize(ms, factor);
        }
    }

    /// Applies one vertical-scaling factor to every microservice of `app`.
    /// `factor = 1.0` restores full-size containers.
    pub fn set_uniform_resize(&mut self, app: &App, factor: f64) {
        for (ms, _) in app.microservices() {
            self.resize_in_place(ms, factor);
        }
    }

    // ---- spot reclamation control plane --------------------------------

    /// Number of spot hosts currently in the cluster.
    pub fn spot_host_count(&self) -> usize {
        self.hosts.iter().filter(|h| h.is_spot()).count()
    }

    /// Posts a reclamation notice on host `index`: the provider takes the
    /// host back at controller round `due_round`. The host is cordoned
    /// immediately (no new placements land on it). Returns `false` when
    /// `index` is out of bounds.
    pub fn post_reclaim_notice(&mut self, index: usize, due_round: u64) -> bool {
        match self.hosts.get_mut(index) {
            Some(h) => {
                h.reclaim_at_round = Some(due_round);
                true
            }
            None => false,
        }
    }

    /// Posts reclamation notices on up to `count` spot hosts without a
    /// pending notice (lowest index first — deterministic), due at
    /// `due_round`. Returns how many notices were posted. This is the
    /// "burst reclamation" the provider issues when it wants capacity back.
    pub fn post_spot_reclamations(&mut self, count: usize, due_round: u64) -> usize {
        let mut posted = 0;
        for h in &mut self.hosts {
            if posted >= count {
                break;
            }
            if h.is_spot() && !h.reclaiming() {
                h.reclaim_at_round = Some(due_round);
                posted += 1;
            }
        }
        posted
    }

    /// Indices of hosts with a pending reclamation notice.
    pub fn reclaiming_hosts(&self) -> Vec<usize> {
        self.hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.reclaiming())
            .map(|(i, _)| i)
            .collect()
    }

    /// Executes every reclamation whose notice is due at or before `round`:
    /// the provider takes the hosts back, destroying any containers still
    /// resident. Returns `(hosts_reclaimed, containers_lost)`.
    pub fn execute_due_reclamations(&mut self, round: u64) -> (usize, u32) {
        let mut hosts = 0;
        let mut containers = 0u32;
        let mut i = self.hosts.len();
        while i > 0 {
            i -= 1;
            if matches!(self.hosts[i].reclaim_at_round, Some(due) if due <= round) {
                containers += self.hosts[i].container_count();
                self.hosts.remove(i);
                hosts += 1;
            }
        }
        (hosts, containers)
    }

    /// Drains every container off hosts with a pending reclamation notice —
    /// the evacuation half of the spot-aware ladder rung. The drained
    /// containers are *not* re-placed here; the caller re-runs
    /// [`provision`] so they land on surviving capacity under the normal
    /// placement policy. Returns `(hosts_drained, containers_drained)`.
    pub fn evacuate_reclaiming(&mut self) -> (usize, u32) {
        let mut hosts = 0;
        let mut containers = 0u32;
        for h in &mut self.hosts {
            if h.reclaiming() {
                hosts += 1;
                containers += h.container_count();
                h.containers.clear();
            }
        }
        (hosts, containers)
    }

    /// Fails every host in a (zone, rack) coordinate — or a whole zone when
    /// `rack` is `None` — the correlated-failure fault. All resident
    /// containers are lost. Returns `(hosts_failed, containers_lost)`.
    pub fn fail_domain(&mut self, zone: u32, rack: Option<u32>) -> (usize, u32) {
        let mut hosts = 0;
        let mut containers = 0u32;
        let mut i = self.hosts.len();
        while i > 0 {
            i -= 1;
            let d = self.hosts[i].domain;
            if d.zone == zone && rack.is_none_or(|r| d.rack == r) {
                containers += self.hosts[i].container_count();
                self.hosts.remove(i);
                hosts += 1;
            }
        }
        (hosts, containers)
    }
}

/// Which placement algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Erms' interference-aware placement, with hosts statically divided
    /// into `groups` equal partitions solved independently (POP [31]).
    /// `groups = 1` solves the whole cluster at once.
    InterferenceAware {
        /// Number of POP partitions (≥ 1).
        groups: usize,
    },
    /// The Kubernetes default scheduler: least-requested spreading, blind
    /// to background utilisation.
    KubernetesDefault,
}

impl Default for PlacementPolicy {
    fn default() -> Self {
        PlacementPolicy::InterferenceAware { groups: 1 }
    }
}

/// Applies a scaling plan to the cluster: releases surplus containers and
/// places missing ones according to `policy`. Returns the number of
/// placements and releases performed.
///
/// The application is **transactional**: on any failure `state` is left
/// exactly as it was — partial releases/placements are rolled back — so a
/// caller (notably the resilience ladder in
/// [`resilience`](crate::resilience)) can retry with a relaxed policy or a
/// degraded plan without first repairing the cluster.
///
/// # Errors
///
/// Returns [`Error::InsufficientCapacity`] when the plan requests more CPU
/// than the cluster can hold (memory is checked the same way through the
/// placement loop).
pub fn provision(
    state: &mut ClusterState,
    app: &App,
    plan: &ScalingPlan,
    policy: PlacementPolicy,
) -> Result<ProvisionReport> {
    provision_with_resize(state, app, plan, policy, 1.0)
}

/// [`provision`] with a uniform vertical-scaling factor applied first:
/// every container of `app` requests `resize_factor` × its configured
/// resources. `1.0` restores full-size containers, so a plain
/// [`provision`] call after a squeezed round automatically grows the
/// containers back. Transactional like [`provision`]: on error `state`
/// keeps its previous contents *and* its previous resize factors.
pub fn provision_with_resize(
    state: &mut ClusterState,
    app: &App,
    plan: &ScalingPlan,
    policy: PlacementPolicy,
    resize_factor: f64,
) -> Result<ProvisionReport> {
    // Work on a scratch copy and commit atomically on success. A journal of
    // inverse operations would avoid the clone, but cluster states are small
    // (a few dozen hosts with per-microservice counters) and the clone makes
    // the rollback trivially correct under every failure path.
    let mut working = state.clone();
    working.set_uniform_resize(app, resize_factor);
    let report = provision_in_place(&mut working, app, plan, policy)?;
    *state = working;
    Ok(report)
}

/// The non-transactional provisioning pass; may leave `state` partially
/// mutated on error, which [`provision`] hides behind a scratch copy.
fn provision_in_place(
    state: &mut ClusterState,
    app: &App,
    plan: &ScalingPlan,
    policy: PlacementPolicy,
) -> Result<ProvisionReport> {
    // Capacity sanity check on CPU. Hosts with a pending reclamation
    // notice are cordoned: they contribute no capacity and accept no new
    // placements — whatever lands there would be destroyed at the grace
    // deadline anyway.
    let requested: f64 = plan
        .iter()
        .map(|(ms, c)| {
            app.microservice(ms)
                .map(|m| m.resources.cpu * state.resize_factor(ms) * c as f64)
                .unwrap_or(0.0)
        })
        .sum();
    let available: f64 = state
        .hosts
        .iter()
        .filter(|h| !h.reclaiming())
        .map(|h| (h.cpu_capacity - h.background_cpu).max(0.0))
        .sum();
    if requested > available {
        return Err(Error::InsufficientCapacity {
            requested_cpu: requested,
            available_cpu: available,
        });
    }

    let mut placed = 0u32;
    let mut released = 0u32;

    // Releases first: free the most-loaded hosts.
    for (ms, target) in plan.iter() {
        let mut current = state.containers_of(ms);
        while current > target {
            let victim = state
                .hosts
                .iter()
                .enumerate()
                .filter(|(_, h)| h.containers_of(ms) > 0)
                .max_by(|(_, a), (_, b)| {
                    let (ac, am) = a.utilization(app);
                    let (bc, bm) = b.utilization(app);
                    (ac + am).total_cmp(&(bc + bm))
                })
                .map(|(i, _)| i)
                // Invariant, not user-reachable: the loop condition
                // `current > target` holds only while containers_of(ms) > 0,
                // so some host must have one.
                .expect("containers_of > 0 implies a host has one");
            let host = &mut state.hosts[victim];
            let entry = host.containers.get_mut(&ms).expect("victim has container");
            *entry -= 1;
            if *entry == 0 {
                host.containers.remove(&ms);
            }
            current -= 1;
            released += 1;
        }
    }

    // Placements.
    let group_count = match policy {
        PlacementPolicy::InterferenceAware { groups } => groups.max(1),
        PlacementPolicy::KubernetesDefault => 1,
    };
    let host_count = state.hosts.len();
    let mut next_group = 0usize;
    for (ms, target) in plan.iter() {
        let m = app.microservice(ms)?;
        let factor = state.resize_factor(ms);
        let (need_cpu, need_mem) = (m.resources.cpu * factor, m.resources.memory_mb * factor);
        let mut current = state.containers_of(ms);
        while current < target {
            // Candidate hosts: the POP group for interference-aware mode,
            // the whole cluster for the Kubernetes baseline. Cordoned
            // (reclaiming) hosts are never candidates.
            let group = next_group % group_count;
            next_group += 1;
            let fits = |i: usize| -> bool {
                let h = &state.hosts[i];
                let (cpu, mem) = h.container_usage(app);
                !h.reclaiming()
                    && cpu + h.background_cpu + need_cpu <= h.cpu_capacity
                    && mem + h.background_mem + need_mem <= h.mem_capacity
            };
            let candidates: Vec<usize> = (0..host_count)
                .filter(|i| group_count == 1 || i % group_count == group)
                .filter(|&i| fits(i))
                .collect();
            let candidates = if candidates.is_empty() {
                // Group full: fall back to any host with room.
                (0..host_count).filter(|&i| fits(i)).collect()
            } else {
                candidates
            };
            let Some(&best) = candidates.iter().min_by(|&&x, &&y| {
                let score = |i: usize| -> f64 {
                    let h = &state.hosts[i];
                    match policy {
                        PlacementPolicy::KubernetesDefault => {
                            // Least-requested: only container requests count.
                            let (c, mm) = h.requested_utilization(app);
                            c + mm
                        }
                        PlacementPolicy::InterferenceAware { .. } => {
                            // Actual utilisation including background load,
                            // scaled by the host class's interference
                            // profile: filling the host where the new
                            // container would *feel* the least pressure is
                            // the greedy step that most reduces unbalance
                            // across a heterogeneous mix.
                            let (c, mm) = h.felt_utilization(app);
                            c + mm
                        }
                    }
                };
                score(x).total_cmp(&score(y))
            }) else {
                return Err(Error::InsufficientCapacity {
                    requested_cpu: requested,
                    available_cpu: available,
                });
            };
            *state.hosts[best].containers.entry(ms).or_insert(0) += 1;
            current += 1;
            placed += 1;
        }
    }

    Ok(ProvisionReport {
        placed,
        released,
        unbalance: state.unbalance(app),
    })
}

/// Summary of one provisioning round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProvisionReport {
    /// Containers newly placed.
    pub placed: u32,
    /// Containers released.
    pub released: u32,
    /// Post-round resource unbalance of the cluster (§5.4).
    pub unbalance: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppBuilder, Sla};
    use crate::latency::LatencyProfile;
    use crate::resources::Resources;

    fn app_with_one_ms() -> (App, MicroserviceId) {
        let mut b = AppBuilder::new("p");
        let m = b.microservice(
            "m",
            LatencyProfile::linear(0.01, 1.0),
            Resources::new(1.0, 1024.0),
        );
        b.service("s", Sla::p95_ms(100.0), |g| {
            g.entry(m);
        });
        (b.build().unwrap(), m)
    }

    fn cluster(n: usize) -> ClusterState {
        ClusterState::new((0..n).map(|_| Host::paper_host()).collect())
    }

    #[test]
    fn placement_reaches_target_counts() {
        let (app, ms) = app_with_one_ms();
        let mut state = cluster(4);
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 10);
        let report = provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        assert_eq!(report.placed, 10);
        assert_eq!(state.containers_of(ms), 10);
    }

    #[test]
    fn scale_down_releases_from_most_loaded() {
        let (app, ms) = app_with_one_ms();
        let mut state = cluster(2);
        state.hosts_mut()[1].background_cpu = 20.0;
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 8);
        provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        plan.set_containers(ms, 4);
        let report = provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        assert_eq!(report.released, 4);
        assert_eq!(state.containers_of(ms), 4);
        // The loaded host should have shed more containers.
        assert!(state.hosts()[0].containers_of(ms) >= state.hosts()[1].containers_of(ms));
    }

    #[test]
    fn interference_aware_avoids_background_load() {
        let (app, ms) = app_with_one_ms();
        let mut state = cluster(2);
        state.hosts_mut()[0].background_cpu = 24.0; // 75% busy
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 10);
        provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        assert!(
            state.hosts()[1].containers_of(ms) > state.hosts()[0].containers_of(ms),
            "should prefer the idle host: {:?} vs {:?}",
            state.hosts()[0].containers_of(ms),
            state.hosts()[1].containers_of(ms)
        );
    }

    #[test]
    fn kubernetes_default_is_blind_to_background_load() {
        let (app, ms) = app_with_one_ms();
        let mut state = cluster(2);
        state.hosts_mut()[0].background_cpu = 24.0;
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 10);
        provision(&mut state, &app, &plan, PlacementPolicy::KubernetesDefault).unwrap();
        // Requests are equal on both hosts, so k8s spreads evenly despite
        // the background load.
        assert_eq!(state.hosts()[0].containers_of(ms), 5);
        assert_eq!(state.hosts()[1].containers_of(ms), 5);
        // And the resulting unbalance exceeds the interference-aware one.
        let k8s_unbalance = state.unbalance(&app);
        let mut state2 = cluster(2);
        state2.hosts_mut()[0].background_cpu = 24.0;
        provision(&mut state2, &app, &plan, PlacementPolicy::default()).unwrap();
        assert!(state2.unbalance(&app) < k8s_unbalance);
    }

    #[test]
    fn capacity_exhaustion_errors() {
        let (app, ms) = app_with_one_ms();
        let mut state = ClusterState::new(vec![Host::new(2.0, 4096.0)]);
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 100);
        assert!(matches!(
            provision(&mut state, &app, &plan, PlacementPolicy::default()),
            Err(Error::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn pop_grouping_still_places_all() {
        let (app, ms) = app_with_one_ms();
        let mut state = cluster(8);
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 20);
        provision(
            &mut state,
            &app,
            &plan,
            PlacementPolicy::InterferenceAware { groups: 4 },
        )
        .unwrap();
        assert_eq!(state.containers_of(ms), 20);
    }

    #[test]
    fn microservice_interference_weighted_by_containers() {
        let (app, ms) = app_with_one_ms();
        let mut state = cluster(2);
        state.hosts_mut()[0].background_cpu = 16.0; // 50% on host 0
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 4);
        provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        let itf = state.microservice_interference(&app, ms);
        assert!(itf.cpu > 0.0 && itf.cpu < 1.0);
        // Unknown microservice falls back to cluster average.
        let other = MicroserviceId::new(99);
        let avg = state.average_interference(&app);
        let fallback = state.microservice_interference(&app, other);
        assert!((fallback.cpu - avg.cpu).abs() < 1e-12);
    }

    #[test]
    fn unbalance_zero_for_identical_hosts() {
        let (app, _) = app_with_one_ms();
        let state = cluster(3);
        assert!(state.unbalance(&app) < 1e-12);
    }

    #[test]
    fn host_from_class_carries_shape_and_scale() {
        let h = Host::from_class(&HostClass::large());
        assert_eq!(h.cpu_capacity, 64.0);
        assert_eq!(h.interference_scale, 0.9);
        assert!(!h.is_spot());
        let s = Host::from_class(&HostClass::small()).with_lifecycle(HostLifecycle::Spot);
        assert!(s.is_spot());
    }

    #[test]
    fn interference_scale_shifts_placement_across_classes() {
        let (app, ms) = app_with_one_ms();
        // Two hosts with identical capacity and background load; the noisy
        // class (scale > 1) must receive fewer containers.
        let mut noisy = Host::paper_host();
        noisy.interference_scale = 1.5;
        let mut state = ClusterState::new(vec![Host::paper_host(), noisy]);
        state.hosts_mut()[0].background_cpu = 8.0;
        state.hosts_mut()[1].background_cpu = 8.0;
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 10);
        provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        assert!(
            state.hosts()[0].containers_of(ms) > state.hosts()[1].containers_of(ms),
            "quiet host should win: {} vs {}",
            state.hosts()[0].containers_of(ms),
            state.hosts()[1].containers_of(ms)
        );
    }

    #[test]
    fn cordoned_host_receives_no_placements() {
        let (app, ms) = app_with_one_ms();
        let mut state = cluster(3);
        assert!(state.post_reclaim_notice(1, 5));
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 12);
        provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        assert_eq!(state.hosts()[1].containers_of(ms), 0);
        assert_eq!(state.containers_of(ms), 12);
    }

    #[test]
    fn reclamation_lifecycle_notice_evacuate_execute() {
        let (app, ms) = app_with_one_ms();
        let spot = Host::paper_host().with_lifecycle(HostLifecycle::Spot);
        let mut state = ClusterState::new(vec![Host::paper_host(), spot.clone(), spot]);
        assert_eq!(state.spot_host_count(), 2);
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 9);
        provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();

        // Provider wants one spot host back at round 4.
        assert_eq!(state.post_spot_reclamations(1, 4), 1);
        assert_eq!(state.reclaiming_hosts(), vec![1]);
        // Nothing due yet at round 3.
        assert_eq!(state.execute_due_reclamations(3), (0, 0));
        assert_eq!(state.len(), 3);

        // Evacuate, re-place, then execute: no containers are lost.
        let (hosts, drained) = state.evacuate_reclaiming();
        assert_eq!(hosts, 1);
        assert!(drained > 0);
        provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        let (gone, lost) = state.execute_due_reclamations(4);
        assert_eq!((gone, lost), (1, 0));
        assert_eq!(state.len(), 2);
        assert_eq!(state.containers_of(ms), 9);
    }

    #[test]
    fn unevacuated_reclamation_destroys_containers() {
        let (app, ms) = app_with_one_ms();
        let spot = Host::paper_host().with_lifecycle(HostLifecycle::Spot);
        let mut state = ClusterState::new(vec![Host::paper_host(), spot]);
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 8);
        provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        let on_spot = state.hosts()[1].containers_of(ms);
        assert!(on_spot > 0);
        state.post_spot_reclamations(1, 2);
        let (gone, lost) = state.execute_due_reclamations(2);
        assert_eq!(gone, 1);
        assert_eq!(lost, on_spot);
        assert_eq!(state.containers_of(ms), 8 - on_spot);
    }

    #[test]
    fn fail_domain_takes_rack_and_zone() {
        let mk = |zone, rack| Host::paper_host().with_domain(FailureDomain::new(zone, rack));
        let mut state = ClusterState::new(vec![mk(0, 0), mk(0, 0), mk(0, 1), mk(1, 0)]);
        // Rack (0, 0): two hosts.
        assert_eq!(state.fail_domain(0, Some(0)).0, 2);
        assert_eq!(state.len(), 2);
        // Whole zone 0: the remaining (0, 1) host.
        assert_eq!(state.fail_domain(0, None).0, 1);
        assert_eq!(state.len(), 1);
        assert_eq!(state.hosts()[0].domain, FailureDomain::new(1, 0));
    }

    #[test]
    fn resize_in_place_squeezes_and_restores() {
        let (app, ms) = app_with_one_ms();
        // One 8-core host: 8 full-size (1.0-core) containers fill it.
        let mut state = ClusterState::new(vec![Host::new(8.0, 64.0 * 1024.0)]);
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 10);
        assert!(matches!(
            provision(&mut state, &app, &plan, PlacementPolicy::default()),
            Err(Error::InsufficientCapacity { .. })
        ));
        // At 0.75× each container requests 0.75 cores: 10 fit.
        provision_with_resize(&mut state, &app, &plan, PlacementPolicy::default(), 0.75).unwrap();
        assert_eq!(state.containers_of(ms), 10);
        assert_eq!(state.resize_factor(ms), 0.75);
        let (cpu, _) = state.hosts()[0].utilization(&app);
        assert!(cpu <= 1.0 + 1e-9);
        // A plain provision at a feasible target restores full size.
        plan.set_containers(ms, 6);
        provision(&mut state, &app, &plan, PlacementPolicy::default()).unwrap();
        assert_eq!(state.resize_factor(ms), 1.0);
        assert_eq!(state.hosts()[0].resize_factor(ms), 1.0);
    }

    #[test]
    fn failed_resize_leaves_factors_untouched() {
        let (app, ms) = app_with_one_ms();
        let mut state = ClusterState::new(vec![Host::new(4.0, 64.0 * 1024.0)]);
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 100);
        let before = state.clone();
        assert!(
            provision_with_resize(&mut state, &app, &plan, PlacementPolicy::default(), 0.5)
                .is_err()
        );
        assert_eq!(state, before);
        assert_eq!(state.resize_factor(ms), 1.0);
    }

    #[test]
    fn added_host_inherits_resize_factors() {
        let (app, ms) = app_with_one_ms();
        let mut state = ClusterState::new(vec![Host::new(8.0, 64.0 * 1024.0)]);
        let mut plan = ScalingPlan::new("t");
        plan.set_containers(ms, 10);
        provision_with_resize(&mut state, &app, &plan, PlacementPolicy::default(), 0.5).unwrap();
        state.add_host(Host::paper_host());
        assert_eq!(state.hosts()[1].resize_factor(ms), 0.5);
    }
}
