//! Dependency merge: collapsing a general graph into sequential virtual
//! microservices (§4.2, Algorithm 1, Figs. 7–8).
//!
//! The latency-target allocation of Eq. (5) only applies to a *chain* of
//! sequentially-executed microservices. Erms therefore merges a tree-shaped
//! dependency graph bottom-up into *virtual microservices*:
//!
//! * **Sequential merge** (Eqs. 6–9): microservices executed one after
//!   another merge into a virtual microservice with
//!   `√(a*·R*) = Σ√(aᵢ·Rᵢ)`, `√(a*/R*) = Σ√(aᵢ/Rᵢ)` and `b* = Σ bᵢ`, chosen
//!   so the virtual node yields the same latency and the same resource usage
//!   as the optimally-provisioned originals.
//! * **Parallel merge** (Eqs. 10–12): parallel microservices must receive
//!   *equal* latency targets at the optimum, and merge into
//!   `a** = Σ aᵢ`, `b** = max bᵢ`, `R** = Σ nᵢRᵢ / Σ nᵢ` — since the
//!   container counts `nᵢ` are not known until targets are fixed, we use the
//!   optimal proportionality `nᵢ ∝ aᵢ` (exact when the intercepts are equal,
//!   the regime where the paper's `≈` in Eq. 10 is tight), giving
//!   `R** = Σ aᵢRᵢ / Σ aᵢ`.
//!
//! After merging, the whole graph is a single virtual microservice; targets
//! are then *distributed* back down the merge tree (Fig. 8): a sequential
//! merge splits its target among children by the closed-form weights of
//! Eq. (5), and a parallel merge hands every child the same target.
//!
//! Call multiplicities are folded into the per-node parameters before
//! merging (`ã = a·m²`, `b̃ = b·m` for a node invoked `m` times per request,
//! exact for sequential repeat calls); with `m = 1` everything reduces to
//! the paper's equations verbatim.
//!
//! # Arena representation
//!
//! [`MergedGraph`] stores the merge tree as a *post-order arena* — parallel
//! `Vec`s of kinds, parameters, child ranges into one flat child-index
//! array, parent links and subtree sizes — rather than `Box`-linked nodes.
//! Building a tree costs a constant number of allocations (each `Vec` is
//! sized exactly by a pre-pass), and both the bottom-up merge and the
//! top-down target distribution are flat index scans with no pointer
//! chasing. Two invariants make incremental re-planning
//! ([`crate::incremental`]) possible:
//!
//! * **post-order**: every node's children precede it, so an ascending
//!   index scan is a valid bottom-up merge order and a descending scan a
//!   valid top-down distribution order;
//! * **contiguity**: each subtree occupies the contiguous index range
//!   `root − subtree_size + 1 ..= root`, so an entire clean subtree can be
//!   skipped with one index jump.
//!
//! The [`MergeTree`] enum is kept as an on-demand *view* for inspection and
//! tests ([`MergedGraph::tree`]).

use serde::{Deserialize, Serialize};

use crate::graph::DependencyGraph;
use crate::ids::NodeId;

/// Interference-resolved, multiplicity-folded parameters of one (real or
/// virtual) microservice used by the merge algebra: latency
/// `L = a·γ_svc/n + b` and per-container dominant resource demand `r`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VirtualParams {
    /// Effective slope `ã` with respect to the *service* workload.
    pub a: f64,
    /// Effective intercept `b̃` in milliseconds.
    pub b: f64,
    /// Dominant resource demand of one container (Eq. 3).
    pub r: f64,
}

impl VirtualParams {
    /// Creates parameters, clamping `a` and `r` positive so the √-algebra
    /// below stays well-defined. Intercepts may be negative (a steep
    /// post-knee segment can cross the y-axis below zero).
    pub fn new(a: f64, b: f64, r: f64) -> Self {
        Self {
            a: a.max(1e-12),
            b,
            r: r.max(1e-12),
        }
    }

    /// Bitwise equality — the comparison the incremental planner uses for
    /// dirtiness: `-0.0 != 0.0` and `NaN == NaN`, so "unchanged" means
    /// "replays the cold computation exactly".
    #[must_use]
    pub fn bits_eq(&self, other: &VirtualParams) -> bool {
        self.a.to_bits() == other.a.to_bits()
            && self.b.to_bits() == other.b.to_bits()
            && self.r.to_bits() == other.r.to_bits()
    }

    /// Sequential merge of several microservices (Eqs. 7–9, n-ary form).
    pub fn merge_sequential(parts: &[VirtualParams]) -> VirtualParams {
        Self::merge_sequential_iter(parts.iter().copied())
    }

    /// Parallel merge of several microservices (Eqs. 11–12, with the
    /// `nᵢ ∝ aᵢ` weighting for `R**` described in the module docs).
    pub fn merge_parallel(parts: &[VirtualParams]) -> VirtualParams {
        Self::merge_parallel_iter(parts.iter().copied())
    }

    /// Iterator form of the sequential merge. The summation order of every
    /// accumulator follows the iterator order; callers that need
    /// bit-identical replays must present children in the same order.
    fn merge_sequential_iter(parts: impl Iterator<Item = VirtualParams> + Clone) -> VirtualParams {
        let sqrt_ar: f64 = parts.clone().map(|p| (p.a * p.r).sqrt()).sum();
        let sqrt_a_over_r: f64 = parts.clone().map(|p| (p.a / p.r).sqrt()).sum();
        let b: f64 = parts.map(|p| p.b).sum();
        VirtualParams::new(sqrt_ar * sqrt_a_over_r, b, sqrt_ar / sqrt_a_over_r)
    }

    /// Iterator form of the parallel merge (same ordering caveat).
    fn merge_parallel_iter(parts: impl Iterator<Item = VirtualParams> + Clone) -> VirtualParams {
        let a: f64 = parts.clone().map(|p| p.a).sum();
        let b: f64 = parts
            .clone()
            .map(|p| p.b)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(f64::MIN); // empty input degenerates safely
        let ar: f64 = parts.map(|p| p.a * p.r).sum();
        VirtualParams::new(a, b, ar / a.max(1e-12))
    }
}

/// A node of the merge tree recording how the graph was collapsed.
///
/// This is the *view* form, materialized on demand by
/// [`MergedGraph::tree`]; the planner itself walks the flat arena.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeTree {
    /// A real call node of the original graph.
    Leaf {
        /// The original graph node.
        node: NodeId,
        /// Its folded parameters.
        params: VirtualParams,
    },
    /// A virtual microservice merging sequentially-executed children.
    Sequential {
        /// Merged parameters (Eqs. 7–9).
        params: VirtualParams,
        /// The merged children, in execution order.
        children: Vec<MergeTree>,
    },
    /// A virtual microservice merging parallel children.
    Parallel {
        /// Merged parameters (Eqs. 11–12).
        params: VirtualParams,
        /// The merged children.
        children: Vec<MergeTree>,
    },
}

impl MergeTree {
    /// The (possibly virtual) parameters of this subtree.
    pub fn params(&self) -> VirtualParams {
        match self {
            MergeTree::Leaf { params, .. }
            | MergeTree::Sequential { params, .. }
            | MergeTree::Parallel { params, .. } => *params,
        }
    }

    /// Number of real (leaf) microservice call nodes below this subtree.
    pub fn leaf_count(&self) -> usize {
        match self {
            MergeTree::Leaf { .. } => 1,
            MergeTree::Sequential { children, .. } | MergeTree::Parallel { children, .. } => {
                children.iter().map(MergeTree::leaf_count).sum()
            }
        }
    }
}

/// Kind of one arena slot of a [`MergedGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaKind {
    /// A real call node of the original graph.
    Leaf(NodeId),
    /// A virtual sequential merge (Eqs. 7–9).
    Sequential,
    /// A virtual parallel merge (Eqs. 11–12).
    Parallel,
}

/// Sentinel parent index of the root.
const NO_PARENT: u32 = u32::MAX;

/// The result of merging one service's dependency graph, stored as a
/// post-order arena (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct MergedGraph {
    kinds: Vec<ArenaKind>,
    params: Vec<VirtualParams>,
    /// Parent arena index per node ([`NO_PARENT`] for the root).
    parent: Vec<u32>,
    /// Per node, the range `child_start..child_start + child_len` of
    /// `children` holding its direct children, in execution order.
    child_start: Vec<u32>,
    child_len: Vec<u32>,
    /// Arena size of each node's subtree (including itself); with the
    /// post-order layout the subtree is `i + 1 - subtree_size[i] ..= i`.
    subtree_size: Vec<u32>,
    /// Flat child-index array all `child_start` ranges point into.
    children: Vec<u32>,
    /// Arena index of the leaf for each graph node (indexed by `NodeId`).
    leaf_of: Vec<u32>,
    node_count: usize,
}

impl MergedGraph {
    /// Merges a dependency graph given per-node folded parameters
    /// (indexed by [`NodeId`]).
    ///
    /// Each node's subtree is the sequential merge of the node itself with
    /// the parallel merge of each of its stages, processed bottom-up exactly
    /// as Algorithm 1's `Merge` of two-tier invocations ("merge parallel
    /// calls first, sequential calls last"). The arena `Vec`s are sized by
    /// a pre-pass, so the whole build performs a constant number of
    /// allocations regardless of graph size.
    ///
    /// ```
    /// use erms_core::graph::GraphBuilder;
    /// use erms_core::ids::MicroserviceId;
    /// use erms_core::merge::{MergedGraph, VirtualParams};
    ///
    /// // Fig. 7: T calls Url and U in parallel, then C.
    /// let mut g = GraphBuilder::new();
    /// let t = g.entry(MicroserviceId::new(0));
    /// let par = g.call_par(t, &[MicroserviceId::new(1), MicroserviceId::new(2)]);
    /// let c = g.call_seq(t, MicroserviceId::new(3));
    /// let graph = g.build().unwrap();
    ///
    /// let params = vec![VirtualParams::new(0.02, 1.0, 0.1); 4];
    /// let merged = MergedGraph::merge(&graph, &params);
    /// let targets = merged.assign_targets(100.0).expect("feasible");
    /// // Parallel children receive equal targets (Eq. 10) and every
    /// // critical path sums exactly to the SLA.
    /// assert_eq!(targets[par[0].index()], targets[par[1].index()]);
    /// let path: f64 = targets[t.index()] + targets[par[0].index()] + targets[c.index()];
    /// assert!((path - 100.0).abs() < 1e-9);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` differs from the graph's node count.
    pub fn merge(graph: &DependencyGraph, params: &[VirtualParams]) -> Self {
        assert_eq!(
            params.len(),
            graph.len(),
            "one VirtualParams entry required per graph node"
        );
        // Pre-pass: exact arena and child-array sizes.
        let leaves = graph.len();
        let mut sequentials = 0usize;
        let mut parallels = 0usize;
        let mut child_slots = 0usize;
        for (_, node) in graph.iter() {
            if !node.stages.is_empty() {
                sequentials += 1;
                child_slots += 1 + node.stages.len();
                for stage in &node.stages {
                    if stage.len() > 1 {
                        parallels += 1;
                        child_slots += stage.len();
                    }
                }
            }
        }
        let total = leaves + sequentials + parallels;
        let mut merged = Self {
            kinds: Vec::with_capacity(total),
            params: Vec::with_capacity(total),
            parent: vec![NO_PARENT; total],
            child_start: Vec::with_capacity(total),
            child_len: Vec::with_capacity(total),
            subtree_size: Vec::with_capacity(total),
            children: Vec::with_capacity(child_slots),
            leaf_of: vec![0; leaves],
            node_count: leaves,
        };
        let mut scratch: Vec<u32> = Vec::with_capacity(child_slots.max(1));
        let root = merged.build_subtree(graph, graph.root(), params, &mut scratch);
        debug_assert_eq!(root as usize, total - 1, "root must be the last slot");
        merged
    }

    /// Appends one arena node whose children are `child_block`, returning
    /// its index. Parameters are folded from the children afterwards via
    /// [`refold`](Self::refold) so cold build and incremental recompute
    /// share one code path (and hence one floating-point op order).
    fn push_node(&mut self, kind: ArenaKind, size: u32, child_block: &[u32]) -> u32 {
        let idx = self.kinds.len() as u32;
        let start = self.children.len() as u32;
        self.children.extend_from_slice(child_block);
        for &c in child_block {
            self.parent[c as usize] = idx;
        }
        self.kinds.push(kind);
        // Placeholder until folded (leaves overwrite it directly).
        self.params.push(VirtualParams::new(1.0, 0.0, 1.0));
        self.child_start.push(start);
        self.child_len.push(child_block.len() as u32);
        self.subtree_size.push(size);
        idx
    }

    fn build_subtree(
        &mut self,
        graph: &DependencyGraph,
        id: NodeId,
        params: &[VirtualParams],
        scratch: &mut Vec<u32>,
    ) -> u32 {
        let node = graph.node(id);
        let leaf = self.push_node(ArenaKind::Leaf(id), 1, &[]);
        self.params[leaf as usize] = params[id.index()];
        self.leaf_of[id.index()] = leaf;
        if node.stages.is_empty() {
            return leaf;
        }
        // Merge parallel calls first (Algorithm 1, lines 24–27) ...
        let mark = scratch.len();
        scratch.push(leaf);
        let mut size = 1u32; // the own leaf
        for stage in &node.stages {
            if stage.len() == 1 {
                let child = self.build_subtree(graph, stage[0], params, scratch);
                size += self.subtree_size[child as usize];
                scratch.push(child);
            } else {
                let stage_mark = scratch.len();
                let mut stage_size = 1u32; // the parallel node itself
                for &gc in stage {
                    let child = self.build_subtree(graph, gc, params, scratch);
                    stage_size += self.subtree_size[child as usize];
                    scratch.push(child);
                }
                let par = {
                    let block = &scratch[stage_mark..];
                    // Split the borrow: the block lives in `scratch`, not
                    // in `self`, so push_node may mutate the arena.
                    let par = self.push_node(ArenaKind::Parallel, stage_size, block);
                    self.refold(par as usize);
                    par
                };
                scratch.truncate(stage_mark);
                scratch.push(par);
                size += stage_size;
            }
        }
        // ... then merge sequential calls (the node plus each stage).
        size += 1; // the sequential node itself
        let seq = self.push_node(ArenaKind::Sequential, size, &scratch[mark..]);
        self.refold(seq as usize);
        scratch.truncate(mark);
        seq
    }

    /// Recomputes node `i`'s parameters from its children (in child order)
    /// and stores them, returning the new value. The single source of the
    /// fold order for both cold builds and incremental re-merges.
    pub(crate) fn refold(&mut self, i: usize) -> VirtualParams {
        let folded = match self.kinds[i] {
            ArenaKind::Leaf(_) => self.params[i],
            ArenaKind::Sequential => VirtualParams::merge_sequential_iter(
                self.children_of(i).iter().map(|&c| self.params[c as usize]),
            ),
            ArenaKind::Parallel => VirtualParams::merge_parallel_iter(
                self.children_of(i).iter().map(|&c| self.params[c as usize]),
            ),
        };
        self.params[i] = folded;
        folded
    }

    /// Overwrites the folded parameters of the leaf standing for graph
    /// node `node`. Ancestors are stale until re-folded bottom-up.
    pub(crate) fn set_leaf_params(&mut self, node: NodeId, params: VirtualParams) {
        let leaf = self.leaf_of[node.index()] as usize;
        self.params[leaf] = params;
    }

    /// Number of arena slots (leaves + virtual merge nodes).
    pub fn arena_len(&self) -> usize {
        self.kinds.len()
    }

    /// Arena index of the root (always the last slot, by post-order).
    pub fn root_index(&self) -> usize {
        self.kinds.len() - 1
    }

    /// Kind of arena slot `i`.
    pub fn kind(&self, i: usize) -> ArenaKind {
        self.kinds[i]
    }

    /// Folded parameters of arena slot `i`.
    pub fn node_params(&self, i: usize) -> VirtualParams {
        self.params[i]
    }

    /// Direct children of arena slot `i`, in execution order.
    pub fn children_of(&self, i: usize) -> &[u32] {
        let start = self.child_start[i] as usize;
        &self.children[start..start + self.child_len[i] as usize]
    }

    /// Parent of arena slot `i`, or `None` for the root.
    pub fn parent_of(&self, i: usize) -> Option<usize> {
        let p = self.parent[i];
        (p != NO_PARENT).then_some(p as usize)
    }

    /// Size (in arena slots) of the subtree rooted at `i`, including `i`;
    /// the subtree occupies `i + 1 - subtree_size(i) ..= i`.
    pub fn subtree_size(&self, i: usize) -> usize {
        self.subtree_size[i] as usize
    }

    /// Arena index of the leaf standing for graph node `node`.
    pub fn leaf_index(&self, node: NodeId) -> usize {
        self.leaf_of[node.index()] as usize
    }

    /// Materializes the [`MergeTree`] view of the arena (for inspection
    /// and tests; the planner walks the arena directly).
    pub fn tree(&self) -> MergeTree {
        self.build_tree(self.root_index())
    }

    fn build_tree(&self, i: usize) -> MergeTree {
        match self.kinds[i] {
            ArenaKind::Leaf(node) => MergeTree::Leaf {
                node,
                params: self.params[i],
            },
            ArenaKind::Sequential => MergeTree::Sequential {
                params: self.params[i],
                children: self
                    .children_of(i)
                    .iter()
                    .map(|&c| self.build_tree(c as usize))
                    .collect(),
            },
            ArenaKind::Parallel => MergeTree::Parallel {
                params: self.params[i],
                children: self
                    .children_of(i)
                    .iter()
                    .map(|&c| self.build_tree(c as usize))
                    .collect(),
            },
        }
    }

    /// The merged whole-graph parameters — a single virtual microservice
    /// standing for the entire service.
    pub fn params(&self) -> VirtualParams {
        self.params[self.root_index()]
    }

    /// The latency floor: the smallest end-to-end latency achievable with
    /// unbounded resources (the merged intercept, i.e. the worst path's
    /// intercept sum).
    pub fn floor_ms(&self) -> f64 {
        self.params().b
    }

    /// Sequential-split totals of node `i` (Eq. 5): `Σ bⱼ` over children
    /// and `Σ √(aⱼ·Rⱼ)` over children, each summed in child order.
    pub(crate) fn seq_totals(&self, i: usize) -> (f64, f64) {
        let total_b: f64 = self
            .children_of(i)
            .iter()
            .map(|&c| self.params[c as usize].b)
            .sum();
        let total_w: f64 = self
            .children_of(i)
            .iter()
            .map(|&c| {
                let p = self.params[c as usize];
                (p.a * p.r).sqrt()
            })
            .sum();
        (total_b, total_w)
    }

    /// Budget node `i` hands to child `c` given its own budget and the
    /// precomputed [`seq_totals`](Self::seq_totals). One expression shared
    /// by the full scan and the incremental scan, so both produce the same
    /// floating-point bits.
    pub(crate) fn seq_child_budget(&self, c: usize, budget: f64, totals: (f64, f64)) -> f64 {
        let (total_b, total_w) = totals;
        let slack = budget - total_b;
        let p = self.params[c];
        let w = (p.a * p.r).sqrt() / total_w;
        p.b + w * slack
    }

    /// Distributes an end-to-end latency budget over all real call nodes
    /// (Fig. 8), returning per-node targets indexed by [`NodeId`].
    ///
    /// Returns `None` when `sla_ms` does not exceed [`floor_ms`](Self::floor_ms)
    /// (no finite allocation can meet the SLA).
    ///
    /// The returned targets satisfy, within the linear model, that the sum
    /// of targets along every critical path is at most `sla_ms`, with
    /// equality on the binding path.
    pub fn assign_targets(&self, sla_ms: f64) -> Option<Vec<f64>> {
        if !(sla_ms.is_finite() && sla_ms > self.floor_ms()) {
            return None;
        }
        let mut targets = vec![f64::NAN; self.node_count];
        let mut budgets = vec![0.0f64; self.kinds.len()];
        self.distribute_all(sla_ms, &mut budgets, &mut targets);
        Some(targets)
    }

    /// Full top-down distribution: a descending index scan (parents before
    /// children, by post-order). `budgets` is per arena slot; `out` is per
    /// graph node.
    pub(crate) fn distribute_all(&self, root_budget: f64, budgets: &mut [f64], out: &mut [f64]) {
        budgets[self.root_index()] = root_budget;
        for i in (0..self.kinds.len()).rev() {
            let budget = budgets[i];
            match self.kinds[i] {
                ArenaKind::Leaf(node) => out[node.index()] = budget,
                // Optimal parallel targets are equal (Eq. 10).
                ArenaKind::Parallel => {
                    for &c in self.children_of(i) {
                        budgets[c as usize] = budget;
                    }
                }
                // Eq. (5): target_i = b_i + w_i · (budget − Σ b_j) with
                // w_i = √(a_i R_i) / Σ √(a_j R_j); the common workload γ
                // cancels out of the weights.
                ArenaKind::Sequential => {
                    let totals = self.seq_totals(i);
                    for &c in self.children_of(i) {
                        budgets[c as usize] = self.seq_child_budget(c as usize, budget, totals);
                    }
                }
            }
        }
    }
}

/// A two-tier invocation: a call node together with all of its direct
/// downstream call nodes (§4.2). Exposed for analysis and to mirror the
/// DFS enumeration of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoTierInvocation {
    /// The upstream node.
    pub parent: NodeId,
    /// Its direct downstream nodes across all stages.
    pub children: Vec<NodeId>,
}

/// Enumerates all two-tier invocations of a graph in the bottom-up order in
/// which Algorithm 1 merges them (deepest invocations first).
pub fn two_tier_invocations(graph: &DependencyGraph) -> Vec<TwoTierInvocation> {
    graph
        .post_order()
        .into_iter()
        .filter(|&id| !graph.node(id).stages.is_empty())
        .map(|id| TwoTierInvocation {
            parent: id,
            children: graph.node(id).children().collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::ids::MicroserviceId;

    fn ms(i: u32) -> MicroserviceId {
        MicroserviceId::new(i)
    }

    fn vp(a: f64, b: f64, r: f64) -> VirtualParams {
        VirtualParams::new(a, b, r)
    }

    #[test]
    fn sequential_merge_matches_eq7_to_eq9() {
        let u = vp(0.08, 3.0, 0.1);
        let c = vp(0.02, 1.0, 0.2);
        let m = VirtualParams::merge_sequential(&[u, c]);
        let sqrt_ar = (u.a * u.r).sqrt() + (c.a * c.r).sqrt();
        let sqrt_aor = (u.a / u.r).sqrt() + (c.a / c.r).sqrt();
        assert!((m.a - sqrt_ar * sqrt_aor).abs() < 1e-12);
        assert!((m.b - 4.0).abs() < 1e-12);
        assert!((m.r - sqrt_ar / sqrt_aor).abs() < 1e-12);
        // Invariant used by Eq. (5): √(a*R*) adds up.
        assert!(((m.a * m.r).sqrt() - sqrt_ar).abs() < 1e-12);
    }

    #[test]
    fn parallel_merge_matches_eq11() {
        let x = vp(0.05, 2.0, 0.1);
        let y = vp(0.03, 5.0, 0.3);
        let m = VirtualParams::merge_parallel(&[x, y]);
        assert!((m.a - 0.08).abs() < 1e-12);
        assert!((m.b - 5.0).abs() < 1e-12);
        let expected_r = (x.a * x.r + y.a * y.r) / (x.a + y.a);
        assert!((m.r - expected_r).abs() < 1e-12);
    }

    #[test]
    fn merge_preserves_resource_usage_of_optimal_chain() {
        // For a sequential chain at workload γ and SLA T, the optimal
        // resource usage is (Σ√(a_i γ R_i))² / (T − Σb). The merged single
        // virtual node must reproduce it: a*γR*/(T−b*) with
        // a*R* = (Σ√(a_iR_i))². Verify numerically.
        let parts = [vp(0.08, 3.0, 0.1), vp(0.02, 1.0, 0.2), vp(0.05, 2.0, 0.15)];
        let gamma = 1000.0;
        let sla = 120.0;
        let m = VirtualParams::merge_sequential(&parts);
        let direct: f64 = {
            let s: f64 = parts.iter().map(|p| (p.a * gamma * p.r).sqrt()).sum();
            let b: f64 = parts.iter().map(|p| p.b).sum();
            s * s / (sla - b)
        };
        let merged = m.a * gamma * m.r / (sla - m.b);
        assert!(
            (direct - merged).abs() / direct < 1e-9,
            "direct {direct} vs merged {merged}"
        );
    }

    /// Fig. 7 graph: T calls Url ∥ U, then C.
    fn fig7_graph() -> (DependencyGraph, [NodeId; 4]) {
        let mut g = GraphBuilder::new();
        let t = g.entry(ms(0));
        let par = g.call_par(t, &[ms(1), ms(2)]);
        let c = g.call_seq(t, ms(3));
        (g.build().unwrap(), [t, par[0], par[1], c])
    }

    fn fig7_params() -> Vec<VirtualParams> {
        vec![
            vp(0.02, 1.0, 0.1), // T
            vp(0.04, 2.0, 0.1), // Url
            vp(0.08, 3.0, 0.1), // U
            vp(0.03, 1.5, 0.1), // C
        ]
    }

    #[test]
    fn fig7_merge_structure() {
        let (graph, _) = fig7_graph();
        let merged = MergedGraph::merge(&graph, &fig7_params());
        // Root is a sequential merge of [T, parallel(Url, U), C].
        match merged.tree() {
            MergeTree::Sequential { children, .. } => {
                assert_eq!(children.len(), 3);
                assert!(matches!(children[0], MergeTree::Leaf { .. }));
                assert!(matches!(children[1], MergeTree::Parallel { .. }));
                assert!(matches!(children[2], MergeTree::Leaf { .. }));
            }
            other => panic!("unexpected root {other:?}"),
        }
        assert_eq!(merged.tree().leaf_count(), 4);
    }

    #[test]
    fn arena_is_post_order_and_contiguous() {
        let (graph, _) = fig7_graph();
        let merged = MergedGraph::merge(&graph, &fig7_params());
        // 4 leaves + 1 parallel + 1 sequential.
        assert_eq!(merged.arena_len(), 6);
        assert_eq!(merged.root_index(), 5);
        assert_eq!(merged.subtree_size(merged.root_index()), 6);
        for i in 0..merged.arena_len() {
            // Children precede their parent (post-order)...
            for &c in merged.children_of(i) {
                assert!((c as usize) < i, "child {c} of {i} must precede it");
                assert_eq!(merged.parent_of(c as usize), Some(i));
            }
            // ... and each subtree is a contiguous range ending at its
            // root: every slot inside (other than the root) has its parent
            // inside too.
            let lo = i + 1 - merged.subtree_size(i);
            for j in lo..i {
                let p = merged.parent_of(j).expect("non-root inside a subtree");
                assert!((lo..=i).contains(&p), "subtree {lo}..={i} leaks via {j}");
            }
        }
        // The root has no parent; every graph node maps to its leaf.
        assert_eq!(merged.parent_of(merged.root_index()), None);
        for (id, _) in graph.iter() {
            assert!(matches!(
                merged.kind(merged.leaf_index(id)),
                ArenaKind::Leaf(n) if n == id
            ));
        }
    }

    #[test]
    fn refold_is_idempotent_on_a_cold_build() {
        let (graph, _) = fig7_graph();
        let mut merged = MergedGraph::merge(&graph, &fig7_params());
        let before: Vec<VirtualParams> = (0..merged.arena_len())
            .map(|i| merged.node_params(i))
            .collect();
        for i in 0..merged.arena_len() {
            merged.refold(i);
        }
        for (i, b) in before.iter().enumerate() {
            assert!(
                merged.node_params(i).bits_eq(b),
                "refold changed bits at slot {i}"
            );
        }
    }

    #[test]
    fn fig7_targets_sum_to_sla_on_every_path() {
        let (graph, [t, url, u, c]) = fig7_graph();
        let merged = MergedGraph::merge(&graph, &fig7_params());
        let sla = 100.0;
        let targets = merged.assign_targets(sla).expect("feasible");
        // Parallel children share the same target.
        assert!((targets[url.index()] - targets[u.index()]).abs() < 1e-9);
        // Both critical paths hit the SLA exactly (parallel targets equal).
        let p1 = targets[t.index()] + targets[u.index()] + targets[c.index()];
        let p2 = targets[t.index()] + targets[url.index()] + targets[c.index()];
        assert!((p1 - sla).abs() < 1e-9, "path1 {p1}");
        assert!((p2 - sla).abs() < 1e-9, "path2 {p2}");
    }

    #[test]
    fn targets_exceed_intercepts() {
        let (graph, _) = fig7_graph();
        let params = fig7_params();
        let merged = MergedGraph::merge(&graph, &params);
        let targets = merged.assign_targets(50.0).expect("feasible");
        for (i, t) in targets.iter().enumerate() {
            assert!(
                *t > params[i].b,
                "target {t} must exceed intercept {}",
                params[i].b
            );
        }
    }

    #[test]
    fn infeasible_sla_returns_none() {
        let (graph, _) = fig7_graph();
        let merged = MergedGraph::merge(&graph, &fig7_params());
        // Floor = 1.0 + max(2.0, 3.0) + 1.5 = 5.5.
        assert!((merged.floor_ms() - 5.5).abs() < 1e-9);
        assert!(merged.assign_targets(5.5).is_none());
        assert!(merged.assign_targets(5.0).is_none());
        assert!(merged.assign_targets(f64::NAN).is_none());
        assert!(merged.assign_targets(5.6).is_some());
    }

    #[test]
    fn single_node_graph_gets_whole_sla() {
        let mut g = GraphBuilder::new();
        let root = g.entry(ms(0));
        let graph = g.build().unwrap();
        let merged = MergedGraph::merge(&graph, &[vp(0.1, 2.0, 0.1)]);
        let targets = merged.assign_targets(80.0).unwrap();
        assert!((targets[root.index()] - 80.0).abs() < 1e-12);
    }

    #[test]
    fn two_tier_invocations_bottom_up() {
        let mut g = GraphBuilder::new();
        let t = g.entry(ms(0));
        let url = g.call_seq(t, ms(1));
        let _c = g.call_seq(url, ms(2));
        let graph = g.build().unwrap();
        let invs = two_tier_invocations(&graph);
        assert_eq!(invs.len(), 2);
        // Deepest first: Url's invocation before T's.
        assert_eq!(invs[0].parent, url);
        assert_eq!(invs[1].parent, t);
        assert_eq!(invs[1].children, vec![url]);
    }

    #[test]
    fn more_sensitive_microservice_gets_larger_share() {
        // Two-node chain; U has 4x the slope of P, equal R and b -> U's
        // target slack share should be twice P's (√4 = 2), per Eq. (5).
        let mut g = GraphBuilder::new();
        let u = g.entry(ms(0));
        let p = g.call_seq(u, ms(1));
        let graph = g.build().unwrap();
        let params = vec![vp(0.08, 0.0, 0.1), vp(0.02, 0.0, 0.1)];
        let merged = MergedGraph::merge(&graph, &params);
        let targets = merged.assign_targets(300.0).unwrap();
        assert!(
            (targets[u.index()] / targets[p.index()] - 2.0).abs() < 1e-9,
            "{targets:?}"
        );
    }
}
