//! Dependency merge: collapsing a general graph into sequential virtual
//! microservices (§4.2, Algorithm 1, Figs. 7–8).
//!
//! The latency-target allocation of Eq. (5) only applies to a *chain* of
//! sequentially-executed microservices. Erms therefore merges a tree-shaped
//! dependency graph bottom-up into *virtual microservices*:
//!
//! * **Sequential merge** (Eqs. 6–9): microservices executed one after
//!   another merge into a virtual microservice with
//!   `√(a*·R*) = Σ√(aᵢ·Rᵢ)`, `√(a*/R*) = Σ√(aᵢ/Rᵢ)` and `b* = Σ bᵢ`, chosen
//!   so the virtual node yields the same latency and the same resource usage
//!   as the optimally-provisioned originals.
//! * **Parallel merge** (Eqs. 10–12): parallel microservices must receive
//!   *equal* latency targets at the optimum, and merge into
//!   `a** = Σ aᵢ`, `b** = max bᵢ`, `R** = Σ nᵢRᵢ / Σ nᵢ` — since the
//!   container counts `nᵢ` are not known until targets are fixed, we use the
//!   optimal proportionality `nᵢ ∝ aᵢ` (exact when the intercepts are equal,
//!   the regime where the paper's `≈` in Eq. 10 is tight), giving
//!   `R** = Σ aᵢRᵢ / Σ aᵢ`.
//!
//! After merging, the whole graph is a single virtual microservice; targets
//! are then *distributed* back down the merge tree (Fig. 8): a sequential
//! merge splits its target among children by the closed-form weights of
//! Eq. (5), and a parallel merge hands every child the same target.
//!
//! Call multiplicities are folded into the per-node parameters before
//! merging (`ã = a·m²`, `b̃ = b·m` for a node invoked `m` times per request,
//! exact for sequential repeat calls); with `m = 1` everything reduces to
//! the paper's equations verbatim.

use serde::{Deserialize, Serialize};

use crate::graph::DependencyGraph;
use crate::ids::NodeId;

/// Interference-resolved, multiplicity-folded parameters of one (real or
/// virtual) microservice used by the merge algebra: latency
/// `L = a·γ_svc/n + b` and per-container dominant resource demand `r`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VirtualParams {
    /// Effective slope `ã` with respect to the *service* workload.
    pub a: f64,
    /// Effective intercept `b̃` in milliseconds.
    pub b: f64,
    /// Dominant resource demand of one container (Eq. 3).
    pub r: f64,
}

impl VirtualParams {
    /// Creates parameters, clamping `a` and `r` positive so the √-algebra
    /// below stays well-defined. Intercepts may be negative (a steep
    /// post-knee segment can cross the y-axis below zero).
    pub fn new(a: f64, b: f64, r: f64) -> Self {
        Self {
            a: a.max(1e-12),
            b,
            r: r.max(1e-12),
        }
    }

    /// Sequential merge of several microservices (Eqs. 7–9, n-ary form).
    pub fn merge_sequential(parts: &[VirtualParams]) -> VirtualParams {
        let sqrt_ar: f64 = parts.iter().map(|p| (p.a * p.r).sqrt()).sum();
        let sqrt_a_over_r: f64 = parts.iter().map(|p| (p.a / p.r).sqrt()).sum();
        let b: f64 = parts.iter().map(|p| p.b).sum();
        VirtualParams::new(sqrt_ar * sqrt_a_over_r, b, sqrt_ar / sqrt_a_over_r)
    }

    /// Parallel merge of several microservices (Eqs. 11–12, with the
    /// `nᵢ ∝ aᵢ` weighting for `R**` described in the module docs).
    pub fn merge_parallel(parts: &[VirtualParams]) -> VirtualParams {
        let a: f64 = parts.iter().map(|p| p.a).sum();
        let b: f64 = parts
            .iter()
            .map(|p| p.b)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(f64::MIN); // empty input degenerates safely
        let ar: f64 = parts.iter().map(|p| p.a * p.r).sum();
        VirtualParams::new(a, b, ar / a.max(1e-12))
    }
}

/// A node of the merge tree recording how the graph was collapsed.
///
/// Distributing latency targets (Fig. 8) reverses the merge by walking this
/// tree from the root.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeTree {
    /// A real call node of the original graph.
    Leaf {
        /// The original graph node.
        node: NodeId,
        /// Its folded parameters.
        params: VirtualParams,
    },
    /// A virtual microservice merging sequentially-executed children.
    Sequential {
        /// Merged parameters (Eqs. 7–9).
        params: VirtualParams,
        /// The merged children, in execution order.
        children: Vec<MergeTree>,
    },
    /// A virtual microservice merging parallel children.
    Parallel {
        /// Merged parameters (Eqs. 11–12).
        params: VirtualParams,
        /// The merged children.
        children: Vec<MergeTree>,
    },
}

impl MergeTree {
    /// The (possibly virtual) parameters of this subtree.
    pub fn params(&self) -> VirtualParams {
        match self {
            MergeTree::Leaf { params, .. }
            | MergeTree::Sequential { params, .. }
            | MergeTree::Parallel { params, .. } => *params,
        }
    }

    /// Number of real (leaf) microservice call nodes below this subtree.
    pub fn leaf_count(&self) -> usize {
        match self {
            MergeTree::Leaf { .. } => 1,
            MergeTree::Sequential { children, .. } | MergeTree::Parallel { children, .. } => {
                children.iter().map(MergeTree::leaf_count).sum()
            }
        }
    }
}

/// The result of merging one service's dependency graph.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedGraph {
    tree: MergeTree,
    node_count: usize,
}

impl MergedGraph {
    /// Merges a dependency graph given per-node folded parameters
    /// (indexed by [`NodeId`]).
    ///
    /// Each node's subtree is the sequential merge of the node itself with
    /// the parallel merge of each of its stages, processed bottom-up exactly
    /// as Algorithm 1's `Merge` of two-tier invocations ("merge parallel
    /// calls first, sequential calls last").
    ///
    /// ```
    /// use erms_core::graph::GraphBuilder;
    /// use erms_core::ids::MicroserviceId;
    /// use erms_core::merge::{MergedGraph, VirtualParams};
    ///
    /// // Fig. 7: T calls Url and U in parallel, then C.
    /// let mut g = GraphBuilder::new();
    /// let t = g.entry(MicroserviceId::new(0));
    /// let par = g.call_par(t, &[MicroserviceId::new(1), MicroserviceId::new(2)]);
    /// let c = g.call_seq(t, MicroserviceId::new(3));
    /// let graph = g.build().unwrap();
    ///
    /// let params = vec![VirtualParams::new(0.02, 1.0, 0.1); 4];
    /// let merged = MergedGraph::merge(&graph, &params);
    /// let targets = merged.assign_targets(100.0).expect("feasible");
    /// // Parallel children receive equal targets (Eq. 10) and every
    /// // critical path sums exactly to the SLA.
    /// assert_eq!(targets[par[0].index()], targets[par[1].index()]);
    /// let path: f64 = targets[t.index()] + targets[par[0].index()] + targets[c.index()];
    /// assert!((path - 100.0).abs() < 1e-9);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` differs from the graph's node count.
    pub fn merge(graph: &DependencyGraph, params: &[VirtualParams]) -> Self {
        assert_eq!(
            params.len(),
            graph.len(),
            "one VirtualParams entry required per graph node"
        );
        let tree = Self::merge_subtree(graph, graph.root(), params);
        Self {
            tree,
            node_count: graph.len(),
        }
    }

    fn merge_subtree(graph: &DependencyGraph, id: NodeId, params: &[VirtualParams]) -> MergeTree {
        let node = graph.node(id);
        let own = MergeTree::Leaf {
            node: id,
            params: params[id.index()],
        };
        if node.stages.is_empty() {
            return own;
        }
        // Merge parallel calls first (Algorithm 1, line 24-27) ...
        let mut seq_parts: Vec<MergeTree> = vec![own];
        for stage in &node.stages {
            let merged_children: Vec<MergeTree> = stage
                .iter()
                .map(|&c| Self::merge_subtree(graph, c, params))
                .collect();
            if merged_children.len() == 1 {
                seq_parts.extend(merged_children);
            } else {
                let p = VirtualParams::merge_parallel(
                    &merged_children
                        .iter()
                        .map(MergeTree::params)
                        .collect::<Vec<_>>(),
                );
                seq_parts.push(MergeTree::Parallel {
                    params: p,
                    children: merged_children,
                });
            }
        }
        // ... then merge sequential calls (the node plus each stage).
        let p = VirtualParams::merge_sequential(
            &seq_parts.iter().map(MergeTree::params).collect::<Vec<_>>(),
        );
        MergeTree::Sequential {
            params: p,
            children: seq_parts,
        }
    }

    /// The merge tree.
    pub fn tree(&self) -> &MergeTree {
        &self.tree
    }

    /// The merged whole-graph parameters — a single virtual microservice
    /// standing for the entire service.
    pub fn params(&self) -> VirtualParams {
        self.tree.params()
    }

    /// The latency floor: the smallest end-to-end latency achievable with
    /// unbounded resources (the merged intercept, i.e. the worst path's
    /// intercept sum).
    pub fn floor_ms(&self) -> f64 {
        self.params().b
    }

    /// Distributes an end-to-end latency budget over all real call nodes
    /// (Fig. 8), returning per-node targets indexed by [`NodeId`].
    ///
    /// Returns `None` when `sla_ms` does not exceed [`floor_ms`](Self::floor_ms)
    /// (no finite allocation can meet the SLA).
    ///
    /// The returned targets satisfy, within the linear model, that the sum
    /// of targets along every critical path is at most `sla_ms`, with
    /// equality on the binding path.
    pub fn assign_targets(&self, sla_ms: f64) -> Option<Vec<f64>> {
        if !(sla_ms.is_finite() && sla_ms > self.floor_ms()) {
            return None;
        }
        let mut targets = vec![f64::NAN; self.node_count];
        Self::distribute(&self.tree, sla_ms, &mut targets);
        Some(targets)
    }

    fn distribute(tree: &MergeTree, budget: f64, out: &mut [f64]) {
        match tree {
            MergeTree::Leaf { node, .. } => {
                out[node.index()] = budget;
            }
            MergeTree::Parallel { children, .. } => {
                // Optimal parallel targets are equal (Eq. 10).
                for child in children {
                    Self::distribute(child, budget, out);
                }
            }
            MergeTree::Sequential { children, .. } => {
                // Eq. (5): target_i = b_i + w_i · (budget − Σ b_j) with
                // w_i = √(a_i R_i) / Σ √(a_j R_j); the common workload γ
                // cancels out of the weights.
                let total_b: f64 = children.iter().map(|c| c.params().b).sum();
                let total_w: f64 = children
                    .iter()
                    .map(|c| {
                        let p = c.params();
                        (p.a * p.r).sqrt()
                    })
                    .sum();
                let slack = budget - total_b;
                for child in children {
                    let p = child.params();
                    let w = (p.a * p.r).sqrt() / total_w;
                    Self::distribute(child, p.b + w * slack, out);
                }
            }
        }
    }
}

/// A two-tier invocation: a call node together with all of its direct
/// downstream call nodes (§4.2). Exposed for analysis and to mirror the
/// DFS enumeration of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoTierInvocation {
    /// The upstream node.
    pub parent: NodeId,
    /// Its direct downstream nodes across all stages.
    pub children: Vec<NodeId>,
}

/// Enumerates all two-tier invocations of a graph in the bottom-up order in
/// which Algorithm 1 merges them (deepest invocations first).
pub fn two_tier_invocations(graph: &DependencyGraph) -> Vec<TwoTierInvocation> {
    graph
        .post_order()
        .into_iter()
        .filter(|&id| !graph.node(id).stages.is_empty())
        .map(|id| TwoTierInvocation {
            parent: id,
            children: graph.node(id).children().collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::ids::MicroserviceId;

    fn ms(i: u32) -> MicroserviceId {
        MicroserviceId::new(i)
    }

    fn vp(a: f64, b: f64, r: f64) -> VirtualParams {
        VirtualParams::new(a, b, r)
    }

    #[test]
    fn sequential_merge_matches_eq7_to_eq9() {
        let u = vp(0.08, 3.0, 0.1);
        let c = vp(0.02, 1.0, 0.2);
        let m = VirtualParams::merge_sequential(&[u, c]);
        let sqrt_ar = (u.a * u.r).sqrt() + (c.a * c.r).sqrt();
        let sqrt_aor = (u.a / u.r).sqrt() + (c.a / c.r).sqrt();
        assert!((m.a - sqrt_ar * sqrt_aor).abs() < 1e-12);
        assert!((m.b - 4.0).abs() < 1e-12);
        assert!((m.r - sqrt_ar / sqrt_aor).abs() < 1e-12);
        // Invariant used by Eq. (5): √(a*R*) adds up.
        assert!(((m.a * m.r).sqrt() - sqrt_ar).abs() < 1e-12);
    }

    #[test]
    fn parallel_merge_matches_eq11() {
        let x = vp(0.05, 2.0, 0.1);
        let y = vp(0.03, 5.0, 0.3);
        let m = VirtualParams::merge_parallel(&[x, y]);
        assert!((m.a - 0.08).abs() < 1e-12);
        assert!((m.b - 5.0).abs() < 1e-12);
        let expected_r = (x.a * x.r + y.a * y.r) / (x.a + y.a);
        assert!((m.r - expected_r).abs() < 1e-12);
    }

    #[test]
    fn merge_preserves_resource_usage_of_optimal_chain() {
        // For a sequential chain at workload γ and SLA T, the optimal
        // resource usage is (Σ√(a_i γ R_i))² / (T − Σb). The merged single
        // virtual node must reproduce it: a*γR*/(T−b*) with
        // a*R* = (Σ√(a_iR_i))². Verify numerically.
        let parts = [vp(0.08, 3.0, 0.1), vp(0.02, 1.0, 0.2), vp(0.05, 2.0, 0.15)];
        let gamma = 1000.0;
        let sla = 120.0;
        let m = VirtualParams::merge_sequential(&parts);
        let direct: f64 = {
            let s: f64 = parts.iter().map(|p| (p.a * gamma * p.r).sqrt()).sum();
            let b: f64 = parts.iter().map(|p| p.b).sum();
            s * s / (sla - b)
        };
        let merged = m.a * gamma * m.r / (sla - m.b);
        assert!(
            (direct - merged).abs() / direct < 1e-9,
            "direct {direct} vs merged {merged}"
        );
    }

    /// Fig. 7 graph: T calls Url ∥ U, then C.
    fn fig7_graph() -> (DependencyGraph, [NodeId; 4]) {
        let mut g = GraphBuilder::new();
        let t = g.entry(ms(0));
        let par = g.call_par(t, &[ms(1), ms(2)]);
        let c = g.call_seq(t, ms(3));
        (g.build().unwrap(), [t, par[0], par[1], c])
    }

    fn fig7_params() -> Vec<VirtualParams> {
        vec![
            vp(0.02, 1.0, 0.1), // T
            vp(0.04, 2.0, 0.1), // Url
            vp(0.08, 3.0, 0.1), // U
            vp(0.03, 1.5, 0.1), // C
        ]
    }

    #[test]
    fn fig7_merge_structure() {
        let (graph, _) = fig7_graph();
        let merged = MergedGraph::merge(&graph, &fig7_params());
        // Root is a sequential merge of [T, parallel(Url, U), C].
        match merged.tree() {
            MergeTree::Sequential { children, .. } => {
                assert_eq!(children.len(), 3);
                assert!(matches!(children[0], MergeTree::Leaf { .. }));
                assert!(matches!(children[1], MergeTree::Parallel { .. }));
                assert!(matches!(children[2], MergeTree::Leaf { .. }));
            }
            other => panic!("unexpected root {other:?}"),
        }
        assert_eq!(merged.tree().leaf_count(), 4);
    }

    #[test]
    fn fig7_targets_sum_to_sla_on_every_path() {
        let (graph, [t, url, u, c]) = fig7_graph();
        let merged = MergedGraph::merge(&graph, &fig7_params());
        let sla = 100.0;
        let targets = merged.assign_targets(sla).expect("feasible");
        // Parallel children share the same target.
        assert!((targets[url.index()] - targets[u.index()]).abs() < 1e-9);
        // Both critical paths hit the SLA exactly (parallel targets equal).
        let p1 = targets[t.index()] + targets[u.index()] + targets[c.index()];
        let p2 = targets[t.index()] + targets[url.index()] + targets[c.index()];
        assert!((p1 - sla).abs() < 1e-9, "path1 {p1}");
        assert!((p2 - sla).abs() < 1e-9, "path2 {p2}");
    }

    #[test]
    fn targets_exceed_intercepts() {
        let (graph, _) = fig7_graph();
        let params = fig7_params();
        let merged = MergedGraph::merge(&graph, &params);
        let targets = merged.assign_targets(50.0).expect("feasible");
        for (i, t) in targets.iter().enumerate() {
            assert!(
                *t > params[i].b,
                "target {t} must exceed intercept {}",
                params[i].b
            );
        }
    }

    #[test]
    fn infeasible_sla_returns_none() {
        let (graph, _) = fig7_graph();
        let merged = MergedGraph::merge(&graph, &fig7_params());
        // Floor = 1.0 + max(2.0, 3.0) + 1.5 = 5.5.
        assert!((merged.floor_ms() - 5.5).abs() < 1e-9);
        assert!(merged.assign_targets(5.5).is_none());
        assert!(merged.assign_targets(5.0).is_none());
        assert!(merged.assign_targets(f64::NAN).is_none());
        assert!(merged.assign_targets(5.6).is_some());
    }

    #[test]
    fn single_node_graph_gets_whole_sla() {
        let mut g = GraphBuilder::new();
        let root = g.entry(ms(0));
        let graph = g.build().unwrap();
        let merged = MergedGraph::merge(&graph, &[vp(0.1, 2.0, 0.1)]);
        let targets = merged.assign_targets(80.0).unwrap();
        assert!((targets[root.index()] - 80.0).abs() < 1e-12);
    }

    #[test]
    fn two_tier_invocations_bottom_up() {
        let mut g = GraphBuilder::new();
        let t = g.entry(ms(0));
        let url = g.call_seq(t, ms(1));
        let _c = g.call_seq(url, ms(2));
        let graph = g.build().unwrap();
        let invs = two_tier_invocations(&graph);
        assert_eq!(invs.len(), 2);
        // Deepest first: Url's invocation before T's.
        assert_eq!(invs[0].parent, url);
        assert_eq!(invs[1].parent, t);
        assert_eq!(invs[1].children, vec![url]);
    }

    #[test]
    fn more_sensitive_microservice_gets_larger_share() {
        // Two-node chain; U has 4x the slope of P, equal R and b -> U's
        // target slack share should be twice P's (√4 = 2), per Eq. (5).
        let mut g = GraphBuilder::new();
        let u = g.entry(ms(0));
        let p = g.call_seq(u, ms(1));
        let graph = g.build().unwrap();
        let params = vec![vp(0.08, 0.0, 0.1), vp(0.02, 0.0, 0.1)];
        let merged = MergedGraph::merge(&graph, &params);
        let targets = merged.assign_targets(300.0).unwrap();
        assert!(
            (targets[u.index()] / targets[p.index()] - 2.0).abs() < 1e-9,
            "{targets:?}"
        );
    }
}
