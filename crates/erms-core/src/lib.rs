//! Core algorithms of the Erms reproduction.
//!
//! This crate implements the primary contribution of *Erms: Efficient
//! Resource Management for Shared Microservices with SLA Guarantees*
//! (ASPLOS 2023):
//!
//! * [`latency`] — the piecewise-linear tail-latency model of §2.2/§5.2
//!   (Eq. 15), parameterised by workload and host interference;
//! * [`graph`] / [`app`] — microservice dependency graphs with sequential and
//!   parallel call stages, services, SLAs and workloads (§2.1, Fig. 1);
//! * [`merge`] — the dependency-merge procedure of §4.2 (Algorithm 1,
//!   Eqs. 6–12) that collapses an arbitrary tree-shaped graph into virtual
//!   microservices with sequential dependency only;
//! * [`scaling`] — the closed-form KKT latency-target allocation of Eq. (5)
//!   and the two-interval parameter selection of §5.3.1;
//! * [`multiplexing`] — the shared-microservice priority model of §4.3/§5.3.2
//!   and the Theorem-1 resource-usage comparisons;
//! * [`evaluate`] — a model-based end-to-end latency evaluator used to check
//!   plans against SLAs;
//! * [`provisioning`] — interference-aware container placement (§5.4) with
//!   POP-style host grouping;
//! * [`manager`] — the Erms controller that ties the above together (§3);
//! * [`resilience`] — the self-healing wrapper around the controller round:
//!   bounded retries, a degradation ladder (relaxed placement, demand
//!   shedding, last-known-good fallback) and plan hysteresis, with every
//!   fallback audited in a `ResilienceReport`.
//!
//! # Example
//!
//! Build the two-service sharing scenario of Fig. 5 and compute an
//! SLA-optimal scaling plan with priority scheduling:
//!
//! ```
//! use erms_core::prelude::*;
//!
//! let mut app = AppBuilder::new("sharing-demo");
//! let u = app.microservice("userTimeline", LatencyProfile::linear(0.08, 3.0),
//!                          Resources::new(0.1, 200.0));
//! let h = app.microservice("homeTimeline", LatencyProfile::linear(0.02, 3.0),
//!                          Resources::new(0.1, 200.0));
//! let p = app.microservice("postStorage", LatencyProfile::linear(0.03, 2.0),
//!                          Resources::new(0.1, 200.0));
//! let s1 = app.service("svc1", Sla::p95_ms(300.0), |g| {
//!     let root = g.entry(u);
//!     g.call_seq(root, p);
//! });
//! let s2 = app.service("svc2", Sla::p95_ms(300.0), |g| {
//!     let root = g.entry(h);
//!     g.call_seq(root, p);
//! });
//! let app = app.build()?;
//!
//! let mut w = WorkloadVector::new();
//! w.set(s1, RequestRate::per_minute(40_000.0));
//! w.set(s2, RequestRate::per_minute(40_000.0));
//!
//! let plan = ErmsScaler::new(&app).plan(&w, Interference::default())?;
//! assert!(plan.containers(p) >= 1);
//! // The more latency-sensitive service gets priority at the shared node.
//! assert_eq!(plan.priority_order(p), Some(&[s1, s2][..]));
//! # Ok::<(), erms_core::Error>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod actions;
pub mod app;
pub mod autoscaler;
pub mod cache;
pub mod error;
pub mod evaluate;
pub mod graph;
pub mod ids;
pub mod incremental;
pub mod latency;
pub mod manager;
pub mod merge;
pub mod multiplexing;
pub mod prelude;
pub mod provisioning;
pub mod resilience;
pub mod resources;
pub mod scaling;
pub mod stats;

pub use crate::error::{Error, Result};
