//! The workspace's single statistics implementation.
//!
//! Percentiles, means, variances and correlations used to be computed by
//! three near-identical private copies (`erms-sim`, `erms-baselines`,
//! `erms-profilers`) plus a fourth in `erms-trace`. They now all delegate
//! here, so every crate answers "what is the p95?" with the same element
//! of the same order.
//!
//! # Quantile definition
//!
//! All percentiles are **nearest-rank**: for a sample of size `n` sorted
//! ascending, the `p`-quantile (with `p` clamped to `[0, 1]`) is the
//! element at index `max(1, ceil(p · n)) − 1`, clamped to `n − 1`. This
//! always returns an actual sample (never an interpolated value),
//! `p = 0` returns the minimum, `p = 1` the maximum, and a single-sample
//! input returns that sample for every `p`. Empty inputs return 0 from
//! every function here — simulation code treats "no observations" as
//! zero latency rather than an error.
//!
//! Ordering is [`f64::total_cmp`]; the simulator only produces finite
//! values, so this matters only in that it keeps sorting well-defined.
//!
//! Two access patterns are served:
//!
//! * one-shot queries over unsorted samples — [`percentile`] selects the
//!   nearest-rank element in O(n) with `select_nth_unstable_by`, without
//!   sorting the whole slice;
//! * repeated queries over the same samples — sort once with
//!   [`sort_samples`], then answer any number of [`percentile_sorted`] /
//!   [`fraction_above_sorted`] queries in O(1) / O(log n).
//!
//! Cross-crate agreement (including the empty and single-sample edge
//! cases) is pinned by `tests/stats_agreement.rs` at the workspace root.

use std::cmp::Ordering;

/// Index of the nearest-rank percentile element in a `len`-element sample.
fn nearest_rank(len: usize, p: f64) -> usize {
    let rank = ((p.clamp(0.0, 1.0) * len as f64).ceil() as usize).max(1) - 1;
    rank.min(len - 1)
}

/// Nearest-rank percentile of an unsorted slice (0 for empty input).
///
/// Copies the input once and selects the rank element in O(n); the input
/// itself is left untouched. Prefer [`percentile_sorted`] when querying
/// several percentiles of the same sample.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut scratch = values.to_vec();
    let rank = nearest_rank(scratch.len(), p);
    let (_, element, _) = scratch.select_nth_unstable_by(rank, f64::total_cmp);
    *element
}

/// Sorts a sample ascending for use with the `_sorted` query helpers.
///
/// Total order: finite values ascend as usual; the simulator only produces
/// finite latencies, so NaN placement is irrelevant but well-defined.
pub fn sort_samples(values: &mut [f64]) {
    values.sort_unstable_by(f64::total_cmp);
}

/// Nearest-rank percentile of an ascending-sorted slice (0 for empty
/// input). O(1).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[nearest_rank(sorted.len(), p)]
}

/// Arithmetic mean (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance (0 for empty input).
pub fn variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|x| (x - m).powi(2)).sum::<f64>() / values.len() as f64
}

/// Pearson correlation of two equal-length series.
///
/// Returns 0 when either series has zero variance (including empty and
/// single-sample inputs, where correlation is undefined).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let ma = mean(a);
    let mb = mean(b);
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Fraction of values strictly above a threshold.
pub fn fraction_above(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v > threshold).count() as f64 / values.len() as f64
}

/// Fraction of an ascending-sorted slice strictly above a threshold.
/// O(log n) via binary search.
pub fn fraction_above_sorted(sorted: &[f64], threshold: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    // First index whose value is strictly greater than the threshold.
    let above_from = sorted
        .partition_point(|&v| matches!(v.total_cmp(&threshold), Ordering::Less | Ordering::Equal));
    (sorted.len() - above_from) as f64 / sorted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_matches_nearest_rank() {
        let v: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.95), 19.0);
        assert_eq!(percentile(&v, 0.5), 10.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_agrees_with_full_sort_on_shuffled_input() {
        // Deterministic pseudo-shuffle; the selection-based percentile must
        // equal the historical copy+sort implementation for every p.
        let mut v: Vec<f64> = (0..257).map(|i| ((i * 7919) % 263) as f64 * 0.5).collect();
        for p in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let via_select = percentile(&v, p);
            let mut sorted = v.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let rank = ((p * sorted.len() as f64).ceil() as usize).max(1) - 1;
            assert_eq!(via_select, sorted[rank.min(sorted.len() - 1)], "p={p}");
        }
        sort_samples(&mut v);
        for p in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(percentile_sorted(&v, p), percentile(&v, p), "p={p}");
        }
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for p in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(percentile(&[3.25], p), 3.25, "p={p}");
            assert_eq!(percentile_sorted(&[3.25], p), 3.25, "p={p}");
        }
    }

    #[test]
    fn mean_variance_and_fraction() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&v), 2.5);
        assert_eq!(variance(&v), 1.25);
        assert_eq!(fraction_above(&v, 2.5), 0.5);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(fraction_above(&[], 1.0), 0.0);
    }

    #[test]
    fn pearson_of_identical_series_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&a, &a) - 1.0).abs() < 1e-12);
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[1.0, 1.0, 1.0, 1.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn sorted_fraction_matches_linear_scan() {
        let mut v = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let linear: Vec<f64> = [0.5, 1.0, 2.0, 4.0, 9.0, 10.0]
            .iter()
            .map(|&t| fraction_above(&v, t))
            .collect();
        sort_samples(&mut v);
        for (i, &t) in [0.5, 1.0, 2.0, 4.0, 9.0, 10.0].iter().enumerate() {
            assert_eq!(fraction_above_sorted(&v, t), linear[i], "t={t}");
        }
        assert_eq!(fraction_above_sorted(&[], 1.0), 0.0);
    }
}
