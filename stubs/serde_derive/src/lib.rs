//! No-op `Serialize`/`Deserialize` derives for the offline `serde` stub.
//!
//! Each derive expands to nothing: the workspace only *annotates* its types
//! for downstream users and never serialises, so empty expansions keep every
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` attribute
//! compiling without pulling in the real proc-macro stack.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
