//! Offline stand-in for `proptest`.
//!
//! Implements the API subset this workspace's property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, numeric-range
//! and tuple strategies, [`collection::vec`], [`arbitrary::any`],
//! [`prop_assert!`] / [`prop_assume!`], and
//! [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from upstream, by design: cases are generated from a fixed
//! deterministic seed sequence (fully reproducible runs), there is **no
//! shrinking** (a failure reports the case number so it can be replayed by
//! seed), and strategies are simple uniform samplers. That is sufficient for
//! invariant checking, which is all this workspace needs.

pub mod test_runner {
    //! Case execution: config, error type, runner.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of proptest's `Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
        /// Base seed the per-case generators derive from.
        pub seed: u64,
        /// Maximum `prop_assume!` rejections before the property errors.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                seed: 0x9E37_79B9_7F4A_7C15,
                max_global_rejects: 1024,
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the property is falsified.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case does not count.
        Reject,
    }

    /// Result of one case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runs the configured number of cases of one property.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner.
        pub fn new(config: ProptestConfig) -> Self {
            Self { config }
        }

        /// Runs `body` once per case with a per-case seeded generator.
        ///
        /// # Panics
        ///
        /// Panics (failing the enclosing `#[test]`) when a case returns
        /// [`TestCaseError::Fail`] or rejections exceed the configured cap.
        pub fn run_cases<F>(&mut self, property: &str, mut body: F)
        where
            F: FnMut(&mut StdRng) -> TestCaseResult,
        {
            let mut rejects = 0u32;
            let mut case = 0u32;
            let mut stream = 0u64;
            while case < self.config.cases {
                let mut rng = StdRng::seed_from_u64(
                    self.config
                        .seed
                        .wrapping_add(stream.wrapping_mul(0x5851_F42D_4C95_7F2D)),
                );
                stream += 1;
                match body(&mut rng) {
                    Ok(()) => case += 1,
                    Err(TestCaseError::Reject) => {
                        rejects += 1;
                        assert!(
                            rejects <= self.config.max_global_rejects,
                            "property `{property}`: too many prop_assume! rejections ({rejects})"
                        );
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{property}` falsified at case {case} (seed stream {}): {msg}",
                            stream - 1
                        );
                    }
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(usize, u64, u32, u16, u8, i64, i32, f64, f32);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> Self {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            rng.gen::<f64>()
        }
    }

    /// Strategy generating arbitrary values of `T`.
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T` (uniform over its domain).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Inclusive lower bound.
        pub min: usize,
        /// Inclusive upper bound.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose length falls in `size`, with elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case (it is re-drawn, not counted) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the configured number of random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run_cases(stringify!($name), |__proptest_rng| {
                let ($($pat,)+) = $crate::strategy::Strategy::generate(
                    &($($strat,)+),
                    __proptest_rng,
                );
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespace mirror of upstream's `prop` module tree.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 1usize..10, y in 0.5f64..2.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y), "y out of range: {y}");
        }

        #[test]
        fn map_and_vec_compose(
            v in prop::collection::vec((0u32..5, 1usize..=3), 0..8),
            (a, _b) in (any::<u16>(), 2i64..=3).prop_map(|(a, b)| (a, b * 2)),
        ) {
            prop_assert!(v.len() < 8);
            prop_assume!(a != 1);
            for (x, y) in v {
                prop_assert!(x < 5 && (1..=3).contains(&y));
            }
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(4));
        runner.run_cases("always_fails", |_rng| {
            Err(crate::test_runner::TestCaseError::Fail("nope".into()))
        });
    }
}
