//! Offline stand-in for `criterion`.
//!
//! The registry is unreachable in this build environment, so this crate
//! keeps the Criterion-based benches compiling and *runnable*: each
//! `bench_function` body is timed over a small fixed number of iterations
//! and the mean is printed. No statistics, plots, or CLI — just enough to
//! smoke-test the hot paths and read rough numbers.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

const WARMUP_ITERS: u32 = 2;
const MEASURE_ITERS: u32 = 10;

/// How [`Bencher::iter_batched`] sizes input batches (ignored here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / MEASURE_ITERS as f64;
    }

    /// Times `routine` with a fresh `setup` output per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        let mut total = 0u128;
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.nanos_per_iter = total as f64 / MEASURE_ITERS as f64;
    }
}

/// A parameterised benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

fn report(group: Option<&str>, id: &dyn fmt::Display, nanos: f64) {
    let prefix = group.map(|g| format!("{g}/")).unwrap_or_default();
    if nanos >= 1e6 {
        println!("bench {prefix}{id}: {:.3} ms/iter", nanos / 1e6);
    } else {
        println!("bench {prefix}{id}: {:.1} ns/iter", nanos);
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (ignored by the stand-in).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(Some(&self.name), &id, bencher.nanos_per_iter);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(Some(&self.name), &id, bencher.nanos_per_iter);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (no-op in the stand-in).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(None, &name, bencher.nanos_per_iter);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Prints the final summary (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function calling each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).sum()
    }

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        c.bench_function("sum", |b| b.iter(|| sum_to(black_box(1000))));
    }

    #[test]
    fn group_api_round_trip() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(42u32), &42u64, |b, &n| {
            b.iter(|| sum_to(n))
        });
        group.bench_function(BenchmarkId::new("sum", 7), |b| {
            b.iter_batched(|| 7u64, sum_to, BatchSize::SmallInput)
        });
        group.finish();
    }
}
