//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a minimal, dependency-free implementation of the
//! `rand 0.8` API subset it actually uses:
//!
//! * [`Rng`] — `gen`, `gen_bool`, `gen_range` over half-open and inclusive
//!   ranges of the common numeric types;
//! * [`SeedableRng`] — `seed_from_u64` / `from_seed`;
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator (the exact
//!   stream differs from upstream `rand`, but every consumer in this
//!   workspace only relies on *seeded determinism* and statistical quality,
//!   not on the upstream byte stream);
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle`.
//!
//! Everything is deterministic given the seed, which the simulator and the
//! fault-injection substrate rely on.

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Element types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)` (`high` included when
    /// `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // Modulo bias is negligible for the small spans used here
                // and irrelevant to a simulation stand-in.
                let span = (high as i128).wrapping_sub(low as i128) as u128
                    + u128::from(inclusive);
                if span == 0 || span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

int_sample_uniform!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                low + u * (high - low)
            }
        }
    )*};
}

float_sample_uniform!(f64, f32);

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_uniform(rng, start, end, true)
    }
}

/// Convenience sampling methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value from the standard distribution of `T`
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen::<f64>() < p
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (array of bytes for [`rngs::StdRng`]).
    type Seed;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator seeded via splitmix64.
    ///
    /// Stands in for `rand::rngs::StdRng`; the stream differs from upstream
    /// but is of high statistical quality and fully reproducible.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Slice extensions: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(2u32..=3);
            assert!((2..=3).contains(&y));
            let z = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut v1: Vec<u32> = (0..50).collect();
        let mut v2: Vec<u32> = (0..50).collect();
        v1.shuffle(&mut StdRng::seed_from_u64(9));
        v2.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(v1, v2);
        let mut sorted = v1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v1, sorted, "shuffle should permute");
    }
}
