//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! downstream consumers but never serialises anything itself (no
//! `serde_json`/`bincode` dependency exists). Because the build environment
//! is fully offline, this stub provides the two marker traits and — behind
//! the `derive` feature — no-op derive macros that accept (and ignore)
//! `#[serde(...)]` attributes. Swapping the real `serde` back in requires
//! only restoring the registry dependency; no source changes.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
