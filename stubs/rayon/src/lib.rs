//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so — like the other crates
//! under `stubs/` — this implements exactly the API subset the workspace
//! uses, with the same observable semantics:
//!
//! * `vec.into_par_iter().map(op).collect::<Vec<_>>()` applies `op` to every
//!   element on a pool of scoped OS threads and returns the results **in
//!   input order**, regardless of which thread finished first.
//! * `rayon::join(a, b)` runs two closures concurrently and returns both
//!   results.
//! * `rayon::current_num_threads()` reports the worker count, honouring the
//!   standard `RAYON_NUM_THREADS` environment variable (so `=1` forces a
//!   serial execution, which the benches use for A/B timing).
//!
//! Differences from real rayon, none of which are observable to this
//! workspace: adapters are eager rather than lazy (`map` runs the closure
//! immediately instead of building a lazy pipeline), work distribution is a
//! shared index-tagged queue rather than work stealing, and threads are
//! spawned per call rather than pooled. Determinism is preserved by tagging
//! each item with its input index and sorting the tags back out before
//! returning. Restoring the real crate is a one-line change in the root
//! `Cargo.toml`.

use std::sync::Mutex;

/// Number of worker threads a parallel call will use.
///
/// Honours `RAYON_NUM_THREADS` (clamped to at least 1) and otherwise falls
/// back to [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Apply `op` to every item on `current_num_threads()` scoped threads,
/// returning results in input order.
///
/// Items are drained from a shared queue so slow cells don't serialize
/// behind a static partition; each result carries its input index and the
/// collected vector is sorted by that index before returning, which makes
/// the output byte-identical to the serial map.
fn par_map_vec<T, R, F>(items: Vec<T>, op: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        return items.into_iter().map(op).collect();
    }
    // Reverse so `pop` hands out items in input order (helps locality; the
    // final sort is what guarantees ordering).
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let op = &op;
    let queue = &queue;
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let next = queue.lock().expect("rayon queue poisoned").pop();
                        match next {
                            Some((index, item)) => local.push((index, op(item))),
                            None => break,
                        }
                    }
                    local
                })
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        for handle in handles {
            out.extend(handle.join().expect("rayon worker thread panicked"));
        }
        out
    });
    tagged.sort_by_key(|&(index, _)| index);
    tagged.into_iter().map(|(_, result)| result).collect()
}

/// Eager parallel iterator over an owned sequence of items.
///
/// Unlike real rayon this is not a lazy pipeline: `map` executes in
/// parallel immediately and yields another `ParIter` holding the (ordered)
/// results. For `into_par_iter().map(..).collect()` chains the observable
/// behaviour is identical.
#[derive(Debug)]
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel, order-preserving map.
    pub fn map<R, F>(self, op: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        ParIter {
            items: par_map_vec(self.items, op),
        }
    }

    /// Parallel for-each (order of side effects is unspecified, as in rayon).
    pub fn for_each<F>(self, op: F)
    where
        F: Fn(T) + Sync + Send,
    {
        par_map_vec(self.items, op);
    }

    /// Collect the (already computed, input-ordered) results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into an eager parallel iterator; mirrors rayon's trait of the
/// same name.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `rayon::prelude` — everything the workspace imports with `use
/// rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.clone().into_par_iter().map(|x| x * 3).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 3).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn map_with_uneven_work_stays_ordered() {
        // Make early items slow so late items finish first on other threads.
        let out: Vec<usize> = (0..64usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|i| {
                if i < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                i
            })
            .collect();
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_borrows() {
        let input = vec![1.5f64, 2.5, 3.5];
        let out: Vec<f64> = input.as_slice().into_par_iter().map(|x| x + 1.0).collect();
        assert_eq!(out, vec![2.5, 3.5, 4.5]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
