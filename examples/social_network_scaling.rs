//! Scaling the Social Network benchmark across workloads and schemes —
//! a miniature of the paper's §6.3.1 evaluation.
//!
//! Run with `cargo run --release --example social_network_scaling`.

use erms::baselines::{Firm, GrandSlam, Rhythm};
use erms::core::prelude::*;
use erms::workload::apps::social_network;

fn main() -> Result<()> {
    let bench = social_network(200.0);
    let app = &bench.app;
    let itf = Interference::new(0.45, 0.40);
    let config = ScalerConfig::default();

    println!(
        "{}: {} microservices, {} services, shared: {:?}",
        app.name(),
        app.microservice_count(),
        app.service_count(),
        bench
            .shared
            .iter()
            .map(|&ms| app
                .microservice(ms)
                .map(|m| m.name.clone())
                .unwrap_or_default())
            .collect::<Vec<_>>()
    );

    println!(
        "\n{:>10}  {:>6} {:>6} {:>10} {:>7}",
        "req/min", "erms", "firm", "grandslam", "rhythm"
    );
    for rate in [2_000.0, 10_000.0, 40_000.0, 100_000.0] {
        let w = WorkloadVector::uniform(app, RequestRate::per_minute(rate));
        let ctx = ScalingContext {
            app,
            workloads: &w,
            interference: itf,
            config: &config,
        };
        let mut erms = Erms::new();
        let mut firm = Firm::new();
        let mut grandslam = GrandSlam::new();
        let mut rhythm = Rhythm::new();
        // Firm is a feedback controller: give it rounds to converge.
        let mut firm_plan = firm.plan(&ctx)?;
        for _ in 0..8 {
            firm_plan = firm.plan(&ctx)?;
        }
        println!(
            "{:>10}  {:>6} {:>6} {:>10} {:>7}",
            rate,
            erms.plan(&ctx)?.total_containers(),
            firm_plan.total_containers(),
            grandslam.plan(&ctx)?.total_containers(),
            rhythm.plan(&ctx)?.total_containers(),
        );
    }

    // Show where Erms spends the SLA on the heaviest service.
    let w = WorkloadVector::uniform(app, RequestRate::per_minute(40_000.0));
    let plan = ErmsScaler::new(app).plan(&w, itf)?;
    let compose = app.service_by_name("compose-post").expect("exists");
    if let Some(sp) = plan.service_plan(compose) {
        println!("\nlatency targets for compose-post (SLA 200 ms):");
        let mut targets: Vec<_> = sp.ms_targets_ms.iter().collect();
        targets.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap());
        for (&ms, &t) in targets.iter().take(8) {
            println!("  {:<22} {:>6.1} ms", app.microservice(ms)?.name, t);
        }
    }
    Ok(())
}
