//! Shared-microservice priority scheduling, end to end (§2.3 / Fig. 5).
//!
//! Two services share `postStorage`. The example compares FCFS sharing,
//! non-sharing partitioning, and Erms priority scheduling analytically
//! (Theorem 1), computes the full priority plan, and validates it in the
//! discrete-event simulator.
//!
//! Run with `cargo run --release --example shared_microservice_priority`.

use std::collections::BTreeMap;

use erms::core::multiplexing::SharingScenario;
use erms::core::prelude::*;
use erms::sim::runtime::{SimConfig, Simulation};
use erms::sim::service_time::ServiceTimeModel;
use erms::workload::apps::fig5_app;

fn main() -> Result<()> {
    let (app, [u, h, p], [s1, s2]) = fig5_app(300.0);
    let itf = Interference::new(0.45, 0.40);

    // --- Analytic comparison (Theorem 1). ---
    let params = |ms: MicroserviceId| {
        let lp = app.microservice(ms)?.profile.params(Interval::High, itf);
        Ok::<_, Error>((lp.a, lp.b.max(0.0), 0.1))
    };
    let scenario = SharingScenario {
        u: params(u)?,
        h: params(h)?,
        p: params(p)?,
        gamma1: 40_000.0,
        gamma2: 40_000.0,
        sla1: 300.0,
        sla2: 300.0,
    };
    let cmp = scenario.compare().expect("feasible");
    println!("analytic CPU cores needed (Theorem 1):");
    println!("  FCFS sharing : {:.2}", cmp.sharing_fcfs);
    println!("  non-sharing  : {:.2}", cmp.non_sharing);
    println!("  priority     : {:.2}", cmp.priority);

    // --- The full Erms plan with priorities. ---
    let mut w = WorkloadVector::new();
    w.set(s1, RequestRate::per_minute(40_000.0));
    w.set(s2, RequestRate::per_minute(40_000.0));
    let plan = ErmsScaler::new(&app).plan(&w, itf)?;
    println!(
        "\npriority order at postStorage: {:?} (more latency-sensitive service first)",
        plan.priority_order(p)
    );
    for (ms, m) in app.microservices() {
        println!("  {:<14} {:>3} containers", m.name, plan.containers(ms));
    }

    // --- Validate in the discrete-event simulator. ---
    let mut sim = Simulation::new(
        &app,
        SimConfig {
            duration_ms: 60_000.0,
            warmup_ms: 10_000.0,
            default_threads: 4,
            ..SimConfig::default()
        },
    );
    for (ms, m) in app.microservices() {
        let (model, threads) = erms::sim::service_time::derive_from_profile(&m.profile, itf, 0.75);
        sim.set_service_time(ms, model);
        sim.set_threads(ms, threads);
        let _ = &m.name;
    }
    sim.set_uniform_interference(itf);
    let containers: BTreeMap<_, _> = app
        .microservices()
        .map(|(ms, _)| (ms, plan.containers(ms)))
        .collect();
    let mut priorities = BTreeMap::new();
    if let Some(order) = plan.priority_order(p) {
        priorities.insert(p, order.to_vec());
    }
    let result = sim.run(&w, &containers, &priorities)?;
    println!("\nsimulated end-to-end P95:");
    for (sid, svc) in app.services() {
        println!(
            "  {:<8} {:.1} ms (SLA {:.0} ms)",
            svc.name,
            result.latency_percentile(sid, 0.95),
            svc.sla.threshold_ms
        );
    }
    let _ = ServiceTimeModel::default();
    Ok(())
}
