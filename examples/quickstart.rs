//! Quickstart: define a small application, compute an SLA-optimal scaling
//! plan with Erms, and verify it against the latency model.
//!
//! Run with `cargo run --example quickstart`.

use erms::core::prelude::*;

fn main() -> Result<()> {
    // 1. Describe the application: microservices with piecewise-linear
    //    latency profiles (slope in ms per call/min per container), and
    //    services with SLAs and dependency graphs.
    let mut builder = AppBuilder::new("quickstart");
    let frontend = builder.microservice(
        "frontend",
        LatencyProfile::kneed(0.002, 1.0, 0.012, 1200.0),
        Resources::default(),
    );
    let logic = builder.microservice(
        "logic",
        LatencyProfile::kneed(0.004, 2.0, 0.03, 900.0),
        Resources::default(),
    );
    let cache = builder.microservice(
        "cache",
        LatencyProfile::kneed(0.001, 0.3, 0.006, 1800.0),
        Resources::default(),
    );
    let db = builder.microservice(
        "database",
        LatencyProfile::kneed(0.008, 2.5, 0.05, 700.0),
        Resources::default(),
    );
    let read_api = builder.service("read-api", Sla::p95_ms(100.0), |g| {
        let root = g.entry(frontend);
        let l = g.call_seq(root, logic);
        // The cache and the database are queried in parallel.
        g.call_par(l, &[cache, db]);
    });
    let app = builder.build()?;

    // 2. Observe a workload and the current cluster interference.
    let mut workloads = WorkloadVector::new();
    workloads.set(read_api, RequestRate::per_minute(30_000.0));
    let interference = Interference::new(0.35, 0.30);

    // 3. Compute the plan: optimal latency targets (Eq. 5 over the merged
    //    graph) and container counts.
    let plan = ErmsScaler::new(&app).plan(&workloads, interference)?;

    println!("scaling plan for {:?} @ 30k req/min:", app.name());
    for (ms, m) in app.microservices() {
        println!("  {:<10} -> {:>3} containers", m.name, plan.containers(ms));
    }
    println!("  total: {} containers", plan.total_containers());

    // 4. Check the plan against the latency model.
    let predicted = service_latency(&app, &plan, &workloads, read_api, &interference)?;
    println!("predicted P95 end-to-end latency: {predicted:.1} ms (SLA: 100 ms)");
    assert!(plan_meets_slas(&app, &plan, &workloads, &interference)?);
    println!("SLA satisfied.");
    Ok(())
}
