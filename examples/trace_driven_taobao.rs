//! Trace-driven scaling at Alibaba scale (§6.5): generate a Taobao-like
//! application (hundreds of services, heavy microservice sharing), plan
//! with Erms, and report sharing statistics and plan shape.
//!
//! Run with `cargo run --release --example trace_driven_taobao`.

use erms::core::prelude::*;
use erms::trace::alibaba::{generate, AlibabaConfig};
use rand::Rng;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<()> {
    // A scaled-down Taobao (the full preset runs in the fig16 bench).
    let generated = generate(&AlibabaConfig {
        services: 200,
        microservice_pool: 1_200,
        avg_nodes_per_service: 40,
        ..AlibabaConfig::taobao(42)
    });
    let app = &generated.app;
    println!(
        "generated {}: {} services, {} referenced microservices, {} shared",
        app.name(),
        app.service_count(),
        generated.sharing_counts.len(),
        generated.shared_count()
    );
    for (threshold, frac) in generated.sharing_cdf(&[1, 10, 50, 100]) {
        println!(
            "  shared by <= {threshold:>3} services: {:.0}%",
            frac * 100.0
        );
    }

    // Random per-service workloads.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut w = WorkloadVector::new();
    for (sid, _) in app.services() {
        w.set(
            sid,
            RequestRate::per_minute(rng.gen_range(1_000.0..10_000.0)),
        );
    }

    let started = Instant::now();
    let plan = ErmsScaler::new(app).plan(&w, Interference::new(0.45, 0.40))?;
    let elapsed = started.elapsed();
    println!(
        "\nplanned {} containers across {} microservices in {:.1} ms",
        plan.total_containers(),
        plan.microservices().count(),
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "priority orders configured at {} shared microservices",
        app.shared_microservices()
            .iter()
            .filter(|&&ms| plan.priority_order(ms).is_some())
            .count()
    );
    assert!(plan_meets_slas(
        app,
        &plan,
        &w,
        &Interference::new(0.45, 0.40)
    )?);
    println!("all {} SLAs satisfied in-model", app.service_count());
    Ok(())
}
