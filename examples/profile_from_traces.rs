//! The full Erms pipeline, closed loop (§3):
//!
//! 1. run the workload on the discrete-event cluster and collect Jaeger-
//!    style spans (Tracing Coordinator);
//! 2. extract the dependency graph and per-microservice latencies from the
//!    spans (Eq. 1) and aggregate per-minute profiling samples;
//! 3. fit piecewise-linear latency profiles (Offline Profiling);
//! 4. rebuild the application from *learned* profiles, plan with Erms
//!    (Online Scaling), and validate the plan back in the simulator.
//!
//! Run with `cargo run --release --example profile_from_traces`.

use std::collections::BTreeMap;

use erms::core::prelude::*;
use erms::profilers::dataset::Sample;
use erms::profilers::piecewise::PiecewiseFitter;
use erms::sim::runtime::{SimConfig, Simulation};
use erms::sim::service_time::ServiceTimeModel;
use erms::trace::aggregate::per_minute_observations;
use erms::trace::extract::{merge_service_graphs, own_latencies};

fn main() -> Result<()> {
    // The "real" system: a front end calling a backend, whose true
    // behaviour is only visible through traces.
    let mut b = AppBuilder::new("closed-loop");
    let front = b.microservice(
        "front",
        LatencyProfile::linear(0.001, 1.0),
        Resources::default(),
    );
    let back = b.microservice(
        "back",
        LatencyProfile::linear(0.001, 1.0),
        Resources::default(),
    );
    let svc = b.service("api", Sla::p95_ms(60.0), |g| {
        let root = g.entry(front);
        g.call_seq(root, back);
    });
    let app = b.build()?;

    // --- 1. Profiling runs at several load levels. ---
    let containers: BTreeMap<_, _> = [(front, 1u32), (back, 1)].into_iter().collect();
    let mut samples_per_ms: BTreeMap<MicroserviceId, Vec<Sample>> = BTreeMap::new();
    let itf = Interference::new(0.3, 0.3);
    for (i, rate) in [4_000.0, 10_000.0, 16_000.0, 22_000.0, 26_000.0]
        .into_iter()
        .enumerate()
    {
        let mut sim = Simulation::new(
            &app,
            SimConfig {
                duration_ms: 220_000.0,
                warmup_ms: 20_000.0,
                seed: 10 + i as u64,
                trace_sampling: 0.1, // Jaeger's 10% (§5.1)
                default_threads: 2,
                ..SimConfig::default()
            },
        );
        sim.set_service_time(front, ServiceTimeModel::new(2.0, 0.5, 1.0, 0.8));
        sim.set_service_time(back, ServiceTimeModel::new(3.0, 0.5, 1.0, 0.8));
        sim.set_uniform_interference(itf);
        let mut w = WorkloadVector::new();
        w.set(svc, RequestRate::per_minute(rate));
        let result = sim.run(&w, &containers, &BTreeMap::new())?;

        // --- 2. Tracing Coordinator: graphs + latencies from spans. ---
        let traces: Vec<&[erms::trace::span::Span]> =
            result.trace_store.iter().map(|(_, s)| s).collect();
        if i == 0 {
            let extracted = merge_service_graphs(traces.clone()).expect("traces recorded");
            println!(
                "extracted dependency graph from {} sampled traces: {} nodes (true graph: {})",
                extracted.traces_merged,
                extracted.graph.len(),
                app.service(svc)?.graph.len()
            );
        }
        let mut observations = Vec::new();
        for spans in traces {
            observations.extend(own_latencies(spans));
        }
        for obs in per_minute_observations(&observations, &containers, itf, 0.95) {
            samples_per_ms
                .entry(obs.microservice)
                .or_default()
                .push(Sample::new(
                    obs.p95_ms,
                    obs.calls_per_container,
                    obs.cpu,
                    obs.mem,
                ));
        }
    }

    // --- 3. Offline profiling. ---
    let mut learned = AppBuilder::new("closed-loop-learned");
    let mut id_map = BTreeMap::new();
    for (ms, m) in app.microservices() {
        let samples = &samples_per_ms[&ms];
        let profile = PiecewiseFitter::default().fit(samples).expect("fit");
        println!(
            "learned profile for {}: {:.1} ms @ 500 calls/min/ctn, knee {:.0} calls/min/ctn",
            m.name,
            profile.eval(500.0, itf),
            profile.cutoff_at(itf)
        );
        id_map.insert(ms, learned.microservice(&m.name, profile, m.resources));
    }
    let learned_svc = learned.service("api", Sla::p95_ms(60.0), |g| {
        let root = g.entry(id_map[&front]);
        g.call_seq(root, id_map[&back]);
    });
    let learned_app = learned.build()?;

    // --- 4. Online scaling on the learned model, validated in the DES. ---
    let mut w = WorkloadVector::new();
    w.set(learned_svc, RequestRate::per_minute(60_000.0));
    let plan = ErmsScaler::new(&learned_app).plan(&w, itf)?;
    println!(
        "\nplan for 60k req/min: front={} back={} containers",
        plan.containers(id_map[&front]),
        plan.containers(id_map[&back])
    );

    let mut sim = Simulation::new(
        &app,
        SimConfig {
            duration_ms: 120_000.0,
            warmup_ms: 20_000.0,
            seed: 99,
            trace_sampling: 0.0,
            default_threads: 2,
            ..SimConfig::default()
        },
    );
    sim.set_service_time(front, ServiceTimeModel::new(2.0, 0.5, 1.0, 0.8));
    sim.set_service_time(back, ServiceTimeModel::new(3.0, 0.5, 1.0, 0.8));
    sim.set_uniform_interference(itf);
    let validation: BTreeMap<_, _> = [
        (front, plan.containers(id_map[&front])),
        (back, plan.containers(id_map[&back])),
    ]
    .into_iter()
    .collect();
    let mut wv = WorkloadVector::new();
    wv.set(svc, RequestRate::per_minute(60_000.0));
    let result = sim.run(&wv, &validation, &BTreeMap::new())?;
    let p95 = result.latency_percentile(svc, 0.95);
    println!("validated in the simulator: P95 = {p95:.1} ms (SLA 60 ms)");
    Ok(())
}
