//! The online observability → re-profiling → re-planning loop (§5.1,
//! Fig. 9) running against a live service-time drift.
//!
//! The shared `postStorage` tier of the Fig. 5 app silently gets 8×
//! slower (a cold cache, a degraded disk). The plan computed from the
//! offline profiles keeps the old container counts and blows through the
//! SLA. A `TelemetryCollector` attached to the simulator observes the
//! drifted system, an `OnlineProfiler` re-fits the piecewise-linear
//! latency models from the sampled spans alone, and each re-plan is
//! itself observed — after a couple of rounds the loop lands back under
//! the SLA.
//!
//! Run with: `cargo run --release --example online_control_loop`

use std::collections::BTreeMap;

use erms::core::prelude::*;
use erms::sim::runtime::{SimConfig, Simulation};
use erms::sim::service_time::{derive_from_profile, ServiceTimeModel};
use erms::telemetry::metrics::{record_planner_metrics, record_resilience};
use erms::telemetry::{
    MetricsRegistry, OnlineProfiler, TelemetryCollector, TelemetryConfig, WindowConfig,
};
use erms::workload::apps::fig5_app;

const SLA_MS: f64 = 300.0;
const RATE_PER_MIN: f64 = 30_000.0;
const DRIFT_FACTOR: f64 = 8.0;

type Mechanics = BTreeMap<MicroserviceId, (ServiceTimeModel, usize)>;

fn simulation<'a>(
    app: &'a App,
    mechanics: &Mechanics,
    itf: Interference,
    seed: u64,
    duration_ms: f64,
) -> Simulation<'a> {
    let mut sim = Simulation::new(
        app,
        SimConfig {
            duration_ms,
            warmup_ms: duration_ms * 0.1,
            seed,
            trace_sampling: 0.0,
            ..SimConfig::default()
        },
    );
    for (&ms, &(model, threads)) in mechanics {
        sim.set_service_time(ms, model);
        sim.set_threads(ms, threads);
    }
    sim.set_uniform_interference(itf);
    sim
}

fn plan_inputs(
    app: &App,
    plan: &ScalingPlan,
) -> (
    BTreeMap<MicroserviceId, u32>,
    BTreeMap<MicroserviceId, Vec<ServiceId>>,
) {
    let containers = app
        .microservices()
        .map(|(ms, _)| (ms, plan.containers(ms)))
        .collect();
    let mut priorities = BTreeMap::new();
    for ms in app.shared_microservices() {
        if let Some(order) = plan.priority_order(ms) {
            priorities.insert(ms, order.to_vec());
        }
    }
    (containers, priorities)
}

fn main() {
    let (app, [_u, _h, p], [s1, s2]) = fig5_app(SLA_MS);
    let itf = Interference::new(0.3, 0.3);
    let mut w = WorkloadVector::new();
    w.set(s1, RequestRate::per_minute(RATE_PER_MIN));
    w.set(s2, RequestRate::per_minute(RATE_PER_MIN));

    // Ground truth the simulator runs: postStorage drifted 8×.
    let mut truth: Mechanics = app
        .microservices()
        .map(|(ms, m)| (ms, derive_from_profile(&m.profile, itf, 0.75)))
        .collect();
    let (model, threads) = truth[&p];
    truth.insert(
        p,
        (
            ServiceTimeModel::new(
                model.base_ms * DRIFT_FACTOR,
                model.cv,
                model.cpu_sensitivity,
                model.mem_sensitivity,
            ),
            threads,
        ),
    );

    let worst_p95 = |result: &erms::sim::SimResult| {
        app.services()
            .map(|(sid, _)| result.latency_percentile(sid, 0.95))
            .fold(0.0f64, f64::max)
    };

    println!("=== Online control loop under an {DRIFT_FACTOR}x postStorage drift ===\n");
    println!(
        "{:<22} {:>12} {:>14} {:>8}",
        "round", "p-containers", "worst P95 (ms)", "SLA ok"
    );

    // Round 0: the stale offline plan against the drifted truth.
    let stale_plan = ErmsScaler::new(&app).plan(&w, itf).expect("stale plan");
    let (mut containers, mut priorities) = plan_inputs(&app, &stale_plan);
    let mut profiler = OnlineProfiler::new().with_window(WindowConfig::default());

    let stale = simulation(&app, &truth, itf, 7, 60_000.0)
        .run(&w, &containers, &priorities)
        .unwrap();
    println!(
        "{:<22} {:>12} {:>14.1} {:>8}",
        "stale plan",
        containers[&p],
        worst_p95(&stale),
        if worst_p95(&stale) <= SLA_MS {
            "yes"
        } else {
            "NO"
        }
    );

    // Observation sweep: watch the drifted system at several workload
    // levels so the profiler sees γ on both sides of the drifted knee.
    for (round, scale) in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6].into_iter().enumerate() {
        let mut w_obs = WorkloadVector::new();
        w_obs.set(s1, RequestRate::per_minute(RATE_PER_MIN * scale));
        w_obs.set(s2, RequestRate::per_minute(RATE_PER_MIN * scale));
        let mut collector = TelemetryCollector::for_app(
            &app,
            TelemetryConfig {
                sampling: 1.0,
                ring_capacity: 262_144,
                seed: 0xD21F ^ round as u64,
                relative_error: 0.01,
            },
        );
        simulation(&app, &truth, itf, 100 + round as u64, 30_000.0)
            .run_with_sink(&w_obs, &containers, &priorities, &mut collector)
            .unwrap();
        profiler.ingest(&collector, &containers, itf);
    }

    // Closed loop: re-fit, re-plan incrementally, observe the new
    // deployment, repeat. The refit outcome names exactly which
    // microservices drifted, so each re-plan touches only the services
    // calling them — while staying bit-identical to a cold plan.
    let mut planner = IncrementalPlanner::new(ScalerConfig::default(), SchedulingMode::Priority);
    let cache = PlanCache::new();
    let mut refit = profiler.refit(&app);
    for round in 1..=3u64 {
        let delta = refit.plan_delta();
        let plan = match planner.replan(&refit.app, &w, itf, &delta, Some(&cache)) {
            Ok(plan) => plan.clone(),
            Err(e) => {
                println!("round {round}: planning failed ({e}); keeping deployment");
                break;
            }
        };
        (containers, priorities) = plan_inputs(&refit.app, &plan);
        let mut collector = TelemetryCollector::for_app(
            &app,
            TelemetryConfig {
                sampling: 1.0,
                ring_capacity: 262_144,
                seed: 0xC0FF ^ round,
                relative_error: 0.01,
            },
        );
        let result = simulation(&app, &truth, itf, 200 + round, 60_000.0)
            .run_with_sink(&w, &containers, &priorities, &mut collector)
            .unwrap();
        let p95 = worst_p95(&result);
        println!(
            "{:<22} {:>12} {:>14.1} {:>8}",
            format!("refit round {round}"),
            containers[&p],
            p95,
            if p95 <= SLA_MS { "yes" } else { "NO" }
        );
        if p95 <= SLA_MS {
            println!("\nSLA restored by the online loop in {round} re-plan round(s).");
            print_planner_report(&planner, &cache);
            resilience_demo(&app, &w);
            return;
        }
        profiler.ingest(&collector, &containers, itf);
        refit = profiler.refit(&app);
    }
    println!("\nloop budget exhausted without restoring the SLA");
    print_planner_report(&planner, &cache);
    resilience_demo(&app, &w);
}

/// Runs the spot-aware fallback ladder through a reclamation notice on a
/// mixed on-demand/spot cluster and mirrors the rung transitions into the
/// metrics registry — the observability half of the recovery ladder.
fn resilience_demo(app: &App, w: &WorkloadVector) {
    println!("\n=== Spot-aware recovery ladder under a reclamation notice ===\n");
    let mut state = ClusterState::new(vec![
        Host::paper_host(),
        Host::paper_host(),
        Host::paper_host().with_lifecycle(HostLifecycle::Spot),
    ]);
    let mut manager = ResilientManager::new(ResilienceConfig::default());
    for round in 1..=4u64 {
        // The provider posts a notice on the spot host ahead of round 2,
        // due two rounds later; the spot-aware ladder evacuates it and
        // re-places the containers on the on-demand survivors.
        if round == 2 {
            state.post_spot_reclamations(1, round + 2);
        }
        if round == 4 {
            state.execute_due_reclamations(round);
        }
        let outcome = manager.run_round(app, &mut state, w);
        let rungs: Vec<String> = outcome
            .report
            .actions
            .iter()
            .map(|a| format!("{a:?}"))
            .collect();
        println!(
            "round {round}: hosts={} spot={} reclaiming={} rungs=[{}]",
            state.hosts().len(),
            state.spot_host_count(),
            state.reclaiming_hosts().len(),
            rungs.join(", ")
        );
    }
    let mut registry = MetricsRegistry::new();
    record_resilience(&mut registry, manager.history());
    println!("\nresilience telemetry:");
    for (name, value) in registry.counters() {
        println!("  {name:<32} {value}");
    }
    for (name, value) in registry.gauges() {
        println!("  {name:<32} {value:.3}");
    }
}

/// Mirrors the planner work counters into a telemetry registry and prints
/// them — the observability half of the incremental-planning loop.
fn print_planner_report(planner: &IncrementalPlanner, cache: &PlanCache) {
    let mut registry = MetricsRegistry::new();
    record_planner_metrics(&mut registry, &planner.metrics(), Some(cache));
    println!("\nplanner telemetry:");
    for (name, value) in registry.counters() {
        println!("  {name:<28} {value}");
    }
    for (name, value) in registry.gauges() {
        println!("  {name:<28} {value:.3}");
    }
}
