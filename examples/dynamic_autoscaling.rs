//! Minute-by-minute autoscaling under a dynamic, Alibaba-shaped workload
//! (§6.3.2): the controller observes last minute's rate, replans, and
//! provisions against the simulated cluster.
//!
//! Run with `cargo run --release --example dynamic_autoscaling`.

use erms::core::prelude::*;
use erms::workload::apps::hotel_reservation;
use erms::workload::dynamic::DynamicWorkload;
use erms::workload::interference::{inject, InterferenceLevel};

fn main() -> Result<()> {
    let bench = hotel_reservation(150.0);
    let app = &bench.app;

    // A cluster with batch jobs on half the hosts.
    let mut cluster = ClusterState::paper_cluster();
    inject(&mut cluster, InterferenceLevel::CpuModerate, 0.5);

    let manager =
        ErmsManager::new(app).with_placement(PlacementPolicy::InterferenceAware { groups: 4 });
    let series = DynamicWorkload {
        base: 15_000.0,
        amplitude: 0.5,
        period_min: 30.0,
        ..DynamicWorkload::default()
    }
    .series(46);

    println!(
        "{:>6} {:>12} {:>11} {:>8} {:>9} {:>11}",
        "minute", "req/min", "containers", "placed", "released", "P95 (ms)"
    );
    for minute in 1..=45 {
        // Observe last minute's workload, replan, and provision.
        let observed = WorkloadVector::uniform(app, series[minute - 1]);
        let outcome = manager.run_round(&mut cluster, &observed)?;
        // What actually happens this minute.
        let actual = WorkloadVector::uniform(app, series[minute]);
        let worst = app
            .services()
            .map(|(sid, _)| {
                service_latency(
                    app,
                    &outcome.plan,
                    &actual,
                    sid,
                    &outcome.observed_interference,
                )
                .unwrap_or(f64::INFINITY)
            })
            .fold(0.0f64, f64::max);
        if minute % 3 == 0 {
            println!(
                "{:>6} {:>12.0} {:>11} {:>8} {:>9} {:>9.1}",
                minute,
                series[minute].as_per_minute(),
                outcome.plan.total_containers(),
                outcome.provision.placed,
                outcome.provision.released,
                worst
            );
        }
    }
    println!(
        "\nfinal cluster unbalance: {:.4} (interference-aware placement keeps hosts even)",
        cluster.unbalance(app)
    );
    Ok(())
}
