#!/usr/bin/env python3
"""Schema guard for the committed BENCH_*.json snapshots.

Each bench harness asserts correctness (bit-identity to a reference
implementation) before writing its JSON, so a snapshot that parses but
lacks a required key means the harness and the committed artifact have
drifted apart — e.g. a renamed field that EXPERIMENTS.md tables and the
CI smoke runs silently stop checking. This script fails CI on any
missing key, extra top-level snapshots are allowed.

Usage: python3 scripts/check_bench_schema.py [repo_root]
Also accepts explicit paths to quick-mode snapshots to validate CI runs:
    python3 scripts/check_bench_schema.py --file BENCH_planner.json /tmp/x.json
"""

import json
import sys
from pathlib import Path

# Dotted key paths that must exist in each committed snapshot. "[]" means
# "every element of this (non-empty) array". A "?" prefix requires the key
# to exist but allows an explicit null (e.g. env.rayon_num_threads when
# the pool width was not pinned).
#
# Every snapshot must carry the host-environment block: parallel-speedup
# numbers are only interpretable next to the host's hardware-thread count
# and any RAYON_NUM_THREADS pin.
ENV_KEYS = ["env.available_parallelism", "?env.rayon_num_threads"]

REQUIRED = {
    "BENCH_des.json": ENV_KEYS + [
        "quick",
        "threads",
        "engine.events",
        "engine.dense_events_per_sec",
        "engine.speedup",
        "engine.bit_identical",
        "replication.replications",
        "replication.speedup",
        "replication.bit_identical",
        "queue_compare.ops",
        "queue_compare.occupancy",
        "queue_compare.dense.heap_wall_ms",
        "queue_compare.dense.calendar_wall_ms",
        "queue_compare.dense.speedup",
        "queue_compare.dense.identical_pop_sequence",
        "queue_compare.dense.batch_hist.1",
        "queue_compare.dense.batch_hist.gt_8",
        "queue_compare.sparse.heap_wall_ms",
        "queue_compare.sparse.calendar_wall_ms",
        "queue_compare.sparse.speedup",
        "queue_compare.sparse.identical_pop_sequence",
        "queue_compare.sparse.batch_hist.1",
        "queue_compare.sparse.batch_hist.gt_8",
    ],
    "BENCH_sweep.json": ENV_KEYS + [
        "quick",
        "threads",
        "grid.cells",
        "sweep.serial_ms",
        "sweep.parallel_ms",
        "sweep.speedup",
        "sweep.bit_identical",
        "plan_cache.hits",
        "plan_cache.misses",
        "plan_cache.hit_rate",
        "simulator.events_per_sec",
    ],
    "BENCH_telemetry.json": ENV_KEYS + [
        "quick",
        "sink.sampling",
        "sink.overhead_pct",
        "sink.bit_identical",
        "sketch.inserts_per_sec",
        "sketch.merges_per_sec",
    ],
    "BENCH_control.json": ENV_KEYS + [
        "quick",
        "plan_query.requests",
        "plan_query.p50_ms",
        "plan_query.p99_ms",
        "plan_query.requests_per_sec",
        "ingest.batches",
        "ingest.spans_per_batch",
        "ingest.requests_per_sec",
        "ingest.spans_per_sec",
        "snapshot.bytes",
        "snapshot.save_wall_ms",
        "snapshot.load_wall_ms",
        "snapshot.bit_identical",
        "contention.threads",
        "contention.batches_per_thread",
        "contention.same_tenant_requests_per_sec",
        "contention.distinct_tenant_requests_per_sec",
        "contention.speedup",
    ],
    "BENCH_chaos.json": ENV_KEYS + [
        "quick",
        "seeds",
        "rounds",
        "hosts",
        "zones",
        "intensity",
        "bit_identical",
        "schemes.[].cluster",
        "schemes.[].ladder",
        "schemes.[].sla_violation_minutes",
        "schemes.[].sla_violation_minutes_mean",
        "schemes.[].mttr_rounds",
        "schemes.[].episodes",
        "schemes.[].containers_lost",
        "schemes.[].spot_evacuations",
        "schemes.[].resizes",
        "schemes.[].shed_demands",
        "schemes.[].skipped_rounds",
    ],
    "BENCH_shard.json": ENV_KEYS + [
        "quick",
        "topology.microservices",
        "topology.services",
        "topology.graph_nodes",
        "topology.cross_shard_edge_fraction.4",
        "scenario.duration_ms",
        "scenario.events",
        "scenario.golden_digest",
        "grid.[].shards",
        "grid.[].threads",
        "grid.[].wall_ms",
        "grid.[].events_per_sec",
        "grid.[].speedup_vs_serial",
        "grid.[].bit_identical",
        "partition_compare.[].shards",
        "partition_compare.[].modulo.cut_fraction",
        "partition_compare.[].modulo.cut_edges",
        "partition_compare.[].modulo.windows",
        "partition_compare.[].modulo.messages",
        "partition_compare.[].modulo.wall_ms",
        "partition_compare.[].topology.cut_fraction",
        "partition_compare.[].topology.cut_edges",
        "partition_compare.[].topology.windows",
        "partition_compare.[].topology.messages",
        "partition_compare.[].topology.wall_ms",
        "partition_compare.[].cut_reduction",
        "partition_compare.[].bit_identical",
        "single_shard_overhead.sequential_events_per_sec",
        "single_shard_overhead.sharded_k1_events_per_sec",
        "speedup_4shards_4threads",
        "target_speedup",
        "target_checked",
    ],
    "BENCH_planner.json": ENV_KEYS + [
        "quick",
        "mode",
        "reps",
        "scales.[].microservices",
        "scales.[].services",
        "scales.[].graph_nodes",
        "scales.[].cold_wall_ms",
        "scales.[].cold_plans_per_sec",
        "scales.[].cold_allocations",
        "scales.[].dirty.[].fraction",
        "scales.[].dirty.[].dirty_services",
        "scales.[].dirty.[].wall_ms",
        "scales.[].dirty.[].plans_per_sec",
        "scales.[].dirty.[].speedup",
        "scales.[].dirty.[].allocations",
        "scales.[].dirty.[].bit_identical",
    ],
}


def lookup(obj, parts):
    """Yields every value at the dotted path, fanning out at "[]"."""
    if not parts:
        yield obj
        return
    head, rest = parts[0], parts[1:]
    if head == "[]":
        if not isinstance(obj, list):
            raise KeyError("expected an array")
        if not obj:
            raise KeyError("expected a non-empty array")
        for item in obj:
            yield from lookup(item, rest)
    else:
        if not isinstance(obj, dict) or head not in obj:
            raise KeyError(head)
        yield from lookup(obj[head], rest)


def check(path: Path, required) -> list:
    errors = []
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable ({e})"]
    for key in required:
        nullable = key.startswith("?")
        bare = key[1:] if nullable else key
        try:
            for value in lookup(data, bare.split(".")):
                if value is None and not nullable:
                    errors.append(f"{path}: key '{bare}' is null")
        except KeyError as e:
            errors.append(f"{path}: missing key '{bare}' (at {e})")
    return errors


def main(argv) -> int:
    if len(argv) >= 3 and argv[0] == "--file":
        name, targets = argv[1], [Path(p) for p in argv[2:]]
        if name not in REQUIRED:
            print(f"unknown schema '{name}'; known: {sorted(REQUIRED)}")
            return 2
        pairs = [(t, REQUIRED[name]) for t in targets]
    else:
        root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
        pairs = [(root / name, req) for name, req in sorted(REQUIRED.items())]

    errors = []
    for path, required in pairs:
        errs = check(path, required)
        errors.extend(errs)
        status = "FAIL" if errs else "ok"
        print(f"{status:>4}  {path}")
    for e in errors:
        print(f"  {e}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
